"""Persistent run ledger: campaigns and findings across runs, in SQLite.

Campaigns stop being fire-and-forget here: every ``campaign --ledger``
appends one **run row** (config fingerprint, outcome counters,
marker-yield per generator shape, pass-attribution rollup, crash
buckets, latency summaries) and upserts one **finding row** per
deduplicated finding — first seen / last seen / occurrence count
across runs — so yield trends and regressions are queryable long after
the process exits (``dce-hunt runs`` / ``show-run`` / ``report`` /
``compare``).

Finding deduplication
---------------------

Findings dedupe on a deterministic fingerprint.  Two modes:

* ``reduce=False`` (default): the *structural signature* — the
  finding kind plus the guarding-condition shapes
  (:func:`repro.core.triage.guarding_condition_shape`) of its missed
  markers on the regenerated program.  Cheap (no compilation), stable
  across runs and job counts, and merges findings whose markers sit
  behind structurally identical conditions.
* ``reduce=True``: the paper-faithful fingerprint — delta-reduce the
  case with :func:`repro.core.reduction.reduce_program` under the
  missed-marker predicate, lower the reduced program, and hash
  :func:`repro.ir.printer.fingerprint_module` of the result ("we
  deduplicate cases after reducing them", §4.3).  This recompiles per
  reduction candidate, so it is opt-in (``campaign --ledger
  --reduce-findings``); when the predicate cannot be established the
  fingerprint falls back to the structural signature.

Both fingerprints are pure functions of (seed, generator config,
compare level), so re-running the same campaign config yields the same
fingerprints and the occurrence counters accumulate across runs.

Case lifecycle
--------------

The ``cases`` table (PR 10) tracks each deduplicated finding through
the paper's triage pipeline: ``found → reduced → bisected → reported``.
Rows are keyed by the structural fingerprint at ``found`` time;
advancing to ``reduced`` attaches the paper-faithful reduced
fingerprint and *merges* cases that reduce to the same program (the
paper's "we deduplicate cases after reducing them").  Transitions are
forward-only and idempotent — re-folding the same job after a crash or
drain leaves the table unchanged, which is what makes the service's
drain-then-resume determinism contract testable
(:meth:`RunLedger.lifecycle_digest`).

Writes are wrapped in :func:`repro.store.retry.retry_locked`: several
service worker threads plus concurrent ``report`` invocations share
one ledger file, so bounded ``database is locked`` contention is
absorbed rather than raised.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from typing import TYPE_CHECKING

from ..store.retry import retry_locked
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # heavyweight sibling packages import this module's
    # package transitively, so runtime imports stay inside functions
    from ..generator import GeneratorConfig
    from ..lang import ast_nodes as ast

#: metrics counter prefix holding the per-pass marker-kill rollup
#: (written by the incremental engine)
ATTRIBUTION_PREFIX = "attribution.marker_kills/"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    started_at REAL NOT NULL,
    wall_time REAL NOT NULL,
    config_fingerprint TEXT NOT NULL,
    programs INTEGER NOT NULL,
    seed_base INTEGER NOT NULL,
    jobs INTEGER NOT NULL,
    incremental INTEGER NOT NULL,
    compare_level TEXT NOT NULL,
    version INTEGER,
    completed INTEGER NOT NULL,
    skipped INTEGER NOT NULL,
    crashed INTEGER NOT NULL,
    budget_exceeded INTEGER NOT NULL,
    degraded INTEGER NOT NULL,
    total_markers INTEGER NOT NULL,
    total_dead INTEGER NOT NULL,
    total_alive INTEGER NOT NULL,
    findings INTEGER NOT NULL,
    soundness_violations INTEGER NOT NULL,
    by_level_json TEXT NOT NULL,
    cross_compiler_json TEXT NOT NULL,
    cross_level_json TEXT NOT NULL,
    shape_yield_json TEXT NOT NULL,
    pass_attribution_json TEXT NOT NULL,
    crash_buckets_json TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    interp TEXT,
    sched_window INTEGER,
    reduce_jobs INTEGER,
    reduction_oracle_calls INTEGER,
    reduction_speculative_wasted INTEGER,
    reduction_wall_time REAL,
    store_seeds_skipped INTEGER,
    store_compile_hits INTEGER,
    store_truth_hits INTEGER,
    store_oracle_hits INTEGER
);
CREATE INDEX IF NOT EXISTS idx_runs_config ON runs(config_fingerprint);
CREATE TABLE IF NOT EXISTS findings (
    fingerprint TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    detail_json TEXT NOT NULL,
    seeds_json TEXT NOT NULL,
    first_seen_run INTEGER NOT NULL,
    last_seen_run INTEGER NOT NULL,
    occurrences INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS run_findings (
    run_id INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    seed INTEGER NOT NULL,
    kind TEXT NOT NULL,
    PRIMARY KEY (run_id, fingerprint, seed)
);
CREATE TABLE IF NOT EXISTS cases (
    fingerprint TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    state TEXT NOT NULL,
    seeds_json TEXT NOT NULL,
    detail_json TEXT NOT NULL,
    reduced_fingerprint TEXT,
    bisect_json TEXT,
    jobs_json TEXT NOT NULL,
    occurrences INTEGER NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cases_state ON cases(state);
CREATE TABLE IF NOT EXISTS case_aliases (
    fingerprint TEXT PRIMARY KEY,
    canonical TEXT NOT NULL
);
"""

#: the case lifecycle, in order; transitions only ever move right
CASE_STATES = ("found", "reduced", "bisected", "reported")


def config_fingerprint(
    n_programs: int,
    seed_base: int,
    version: int | None = None,
    generator_config: GeneratorConfig | None = None,
    compare_level: str = "O3",
    incremental: bool = True,
) -> str:
    """A short stable hash of everything that determines a campaign's
    results.  ``jobs``, the scheduler ``window``, and the ``interp``
    backend are deliberately excluded: results are bit-identical under
    any of them, so reruns at different parallelism or on the AST
    cross-check interpreter share the fingerprint (and ``compare``
    treats them as the same campaign)."""
    payload = {
        "n_programs": n_programs,
        "seed_base": seed_base,
        "version": version,
        "generator_config": (
            asdict(generator_config) if generator_config is not None else None
        ),
        "compare_level": compare_level,
        "incremental": incremental,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return digest[:16]


# -- finding fingerprints --------------------------------------------------


def _finding_markers(finding: dict) -> list[tuple[str, str]]:
    """``(side, marker)`` pairs for a finding dict, sorted."""
    if finding["kind"] == "cross-compiler":
        return sorted(
            [("gcclike", m) for m in finding.get("gcc_misses", ())]
            + [("llvmlike", m) for m in finding.get("llvm_misses", ())]
        )
    return sorted((finding.get("family", "?"), m) for m in finding["markers"])


def finding_fingerprint(
    finding: dict,
    generator_config: GeneratorConfig | None = None,
    compare_level: str = "O3",
    version: int | None = None,
    reduce: bool = False,
    program: ast.Program | None = None,
) -> str:
    """Deterministic dedup key for one campaign finding dict.

    ``program`` overrides the regenerated-from-seed instrumented
    program (tests exercise the reduce path on small fixtures this
    way).  See the module docstring for the two modes.
    """
    if program is None:
        from ..core.markers import instrument_program
        from ..generator import generate_program

        program = instrument_program(
            generate_program(finding["seed"], generator_config)
        ).program
    if reduce:
        fingerprint = _reduced_fingerprint(
            finding, program, compare_level, version
        )
        if fingerprint is not None:
            return fingerprint
    return _structural_fingerprint(finding, program)


def _structural_fingerprint(finding: dict, program: "ast.Program") -> str:
    from ..core.triage import guarding_condition_shape

    shapes = [
        (side, guarding_condition_shape(program, marker))
        for side, marker in _finding_markers(finding)
    ]
    payload = {
        "kind": finding["kind"],
        "family": finding.get("family"),
        "shapes": shapes,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


def _reduced_fingerprint(
    finding: dict,
    program: ast.Program,
    compare_level: str,
    version: int | None,
) -> str | None:
    """Reduce the case and hash the canonical IR of the result, or
    ``None`` when no (keeper, witness) pairing makes the initial
    program interesting (the structural signature then applies).
    Delegates to :func:`repro.core.reduction.reduce_finding` — the
    same engine a campaign's reduction queue runs off-path."""
    from ..core.reduction import reduce_finding

    outcome = reduce_finding(
        finding, program, compare_level=compare_level, version=version
    )
    return outcome[0] if outcome is not None else None


# -- row types -------------------------------------------------------------


@dataclass
class RunRow:
    """One campaign, as persisted (JSON columns parsed)."""

    run_id: int
    started_at: float
    wall_time: float
    config_fingerprint: str
    programs: int
    seed_base: int
    jobs: int
    incremental: bool
    compare_level: str
    version: int | None
    completed: int
    skipped: int
    crashed: int
    budget_exceeded: int
    degraded: int
    total_markers: int
    total_dead: int
    total_alive: int
    findings: int
    soundness_violations: int
    #: ground-truth interpreter backend ("bytecode"/"ast"); like
    #: ``jobs``/``window`` it is metadata, not part of the fingerprint
    interp: str | None = None
    #: parallel scheduler in-flight shard window (None = default)
    window: int | None = None
    #: reduction-queue pool size (None = no reduction queue ran)
    reduce_jobs: int | None = None
    #: reduction-queue rollups (None when no queue ran)
    reduction_oracle_calls: int | None = None
    reduction_speculative_wasted: int | None = None
    reduction_wall_time: float | None = None
    #: persistent artifact-store hit counters (None = no --store)
    store_seeds_skipped: int | None = None
    store_compile_hits: int | None = None
    store_truth_hits: int | None = None
    store_oracle_hits: int | None = None
    by_level: dict[str, dict[str, int]] = field(default_factory=dict)
    cross_compiler: dict[str, int] = field(default_factory=dict)
    cross_level: dict[str, dict[str, int]] = field(default_factory=dict)
    shape_yield: dict[str, dict[str, int]] = field(default_factory=dict)
    pass_attribution: dict[str, int] = field(default_factory=dict)
    crash_buckets: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def dead_pct(self) -> float:
        total = self.total_markers
        return 100.0 * self.total_dead / total if total else 0.0

    def metric_value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge value out of the stored metrics snapshot."""
        entry = self.metrics.get(name)
        if not entry:
            return default
        return entry.get("value", default)

    def per_program(self, name: str) -> float:
        """A counter normalized by completed programs (comparison
        across runs of different sizes)."""
        return self.metric_value(name) / self.completed if self.completed else 0.0


@dataclass
class FindingRow:
    """One deduplicated finding with its cross-run lifecycle."""

    fingerprint: str
    kind: str
    detail: dict
    seeds: list[int]
    first_seen_run: int
    last_seen_run: int
    occurrences: int


@dataclass
class CaseRow:
    """One deduplicated case tracked through the triage lifecycle."""

    fingerprint: str
    kind: str
    state: str
    seeds: list[int]
    detail: dict
    reduced_fingerprint: str | None
    bisect: dict | None
    #: service job ids that folded this case (dedup + idempotency key)
    jobs: list[str]
    #: distinct folds that saw this case (re-folds don't count)
    occurrences: int
    updated_at: float

    def to_dict(self, *, timestamps: bool = True) -> dict[str, Any]:
        """Canonical JSON form; ``timestamps=False`` drops the one
        wall-clock field so two tables can be compared byte-for-byte."""
        payload: dict[str, Any] = {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "state": self.state,
            "seeds": sorted(self.seeds),
            "detail": self.detail,
            "reduced_fingerprint": self.reduced_fingerprint,
            "bisect": self.bisect,
            "jobs": sorted(self.jobs),
            "occurrences": self.occurrences,
        }
        if timestamps:
            payload["updated_at"] = self.updated_at
        return payload


class RunLedger:
    """SQLite-backed store of campaign runs and deduplicated findings.

    Usable as a context manager; ``path`` may be ``":memory:"``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: bounded busy-retry rounds absorbed by this connection
        self.lock_retries = 0
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        # first line of defense against concurrent writers (service
        # worker threads, a `report` running against a live ledger);
        # retry_locked is the bounded second line
        self._conn.execute("PRAGMA busy_timeout = 5000")

        def _init() -> None:
            self._conn.executescript(_SCHEMA)
            self._migrate()
            self._conn.commit()

        self._retrying(_init)

    def _note_lock_retry(self, attempt: int) -> None:
        self.lock_retries += 1

    def _retrying(self, operation):
        """One write transaction with bounded ``database is locked``
        retries.  ``operation`` must be self-contained (it is rerun
        from scratch), so wrap multi-statement writes in
        ``with self._conn:`` for rollback-on-failure."""
        return retry_locked(operation, on_retry=self._note_lock_retry)

    def _migrate(self) -> None:
        """Add columns introduced after a ledger file was created."""
        have = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        for name, decl in (
            ("interp", "TEXT"),
            ("sched_window", "INTEGER"),
            # PR 8: reduction-queue metadata; like jobs/window/interp
            # these stay out of the config fingerprint
            ("reduce_jobs", "INTEGER"),
            ("reduction_oracle_calls", "INTEGER"),
            ("reduction_speculative_wasted", "INTEGER"),
            ("reduction_wall_time", "REAL"),
            # PR 9: persistent artifact-store hit counters (NULL = the
            # run had no --store; 0 = store on but cold)
            ("store_seeds_skipped", "INTEGER"),
            ("store_compile_hits", "INTEGER"),
            ("store_truth_hits", "INTEGER"),
            ("store_oracle_hits", "INTEGER"),
        ):
            if name not in have:
                self._conn.execute(
                    f"ALTER TABLE runs ADD COLUMN {name} {decl}"
                )

    # -- ingest --------------------------------------------------------

    def record_run(
        self,
        result,
        *,
        n_programs: int,
        seed_base: int,
        jobs: int = 1,
        incremental: bool = True,
        compare_level: str = "O3",
        version: int | None = None,
        generator_config: GeneratorConfig | None = None,
        metrics: MetricsRegistry | None = None,
        wall_time: float = 0.0,
        started_at: float | None = None,
        reduce_findings: bool = False,
        interp: str | None = None,
        window: int | None = None,
        reduce_jobs: int | None = None,
        store_used: bool = False,
    ) -> int:
        """Persist one :class:`~repro.core.corpus.CampaignResult`;
        returns the new run id.  Findings upsert against prior runs
        (dedup within the run first, so ``occurrences`` counts *runs*
        in which a fingerprint was seen).

        ``interp`` (ground-truth backend; ``None`` resolves to the
        process default), ``window`` (parallel scheduler in-flight
        cap), and ``reduce_jobs`` (reduction-queue pool size) are
        recorded as run metadata but stay out of the config
        fingerprint — none of them changes results.

        When the campaign ran a reduction queue
        (``result.reduced_fingerprints``), those precomputed reduced
        fingerprints are used directly instead of re-reducing every
        finding here, and the queue's oracle-call/speculation/wall-time
        rollup lands in the run row.

        ``store_used`` marks that a persistent artifact store backed
        the run: the four ``store_*`` hit-counter columns then fill
        from the metrics snapshot (0 when the store was stone cold)
        instead of staying NULL."""
        if interp is None:
            from ..interp import get_default_backend

            interp = get_default_backend()
        snapshot = metrics.to_dict() if metrics is not None else {}
        reduction_stats = getattr(result, "reduction_stats", None)
        attribution = {
            name[len(ATTRIBUTION_PREFIX):]: entry["value"]
            for name, entry in snapshot.items()
            if name.startswith(ATTRIBUTION_PREFIX)
        }

        def _store_counter(name: str) -> int | None:
            if not store_used:
                return None
            return int(snapshot.get(name, {}).get("value", 0))

        row = (
            started_at if started_at is not None else time.time(),
            wall_time,
            config_fingerprint(
                n_programs, seed_base, version, generator_config,
                compare_level, incremental,
            ),
            n_programs,
            seed_base,
            jobs,
            int(incremental),
            compare_level,
            version,
            len(result.seeds),
            len(result.skipped),
            len(result.crashes),
            len(result.budget_exceeded),
            len(result.degraded),
            result.total_markers,
            result.total_dead,
            result.total_alive,
            len(result.findings),
            len(result.soundness_violations),
            json.dumps({
                f"{family}-{level}": {
                    "dead_total": stats.dead_total,
                    "missed": stats.missed,
                    "primary_missed": stats.primary_missed,
                }
                for (family, level), stats in sorted(result.by_level.items())
            }),
            json.dumps(asdict(result.cross_compiler)),
            json.dumps({
                family: asdict(stats)
                for family, stats in sorted(result.cross_level.items())
            }),
            json.dumps({
                shape: stats.to_dict()
                for shape, stats in sorted(result.by_shape.items())
            }),
            json.dumps(attribution, sort_keys=True),
            json.dumps({
                bucket: len(envelopes)
                for bucket, envelopes in result.crash_buckets.items()
            }),
            json.dumps(snapshot, sort_keys=True),
            interp,
            window,
            reduce_jobs,
            reduction_stats.oracle_calls if reduction_stats else None,
            reduction_stats.speculative_wasted if reduction_stats else None,
            reduction_stats.wall_time if reduction_stats else None,
            _store_counter("store.seeds_skipped"),
            _store_counter("store.compile_hits"),
            _store_counter("store.truth_hits"),
            _store_counter("store.oracle_hits"),
        )
        def _write() -> int:
            # `with` commits on success, rolls back on failure — so a
            # locked-out attempt leaves nothing behind for the retry
            with self._conn:
                cursor = self._conn.execute(
                    """INSERT INTO runs (
                        started_at, wall_time, config_fingerprint, programs,
                        seed_base, jobs, incremental, compare_level, version,
                        completed, skipped, crashed, budget_exceeded, degraded,
                        total_markers, total_dead, total_alive, findings,
                        soundness_violations, by_level_json,
                        cross_compiler_json, cross_level_json,
                        shape_yield_json, pass_attribution_json,
                        crash_buckets_json, metrics_json, interp, sched_window,
                        reduce_jobs, reduction_oracle_calls,
                        reduction_speculative_wasted, reduction_wall_time,
                        store_seeds_skipped, store_compile_hits,
                        store_truth_hits, store_oracle_hits
                    ) VALUES (%s)""" % ", ".join("?" * 36),
                    row,
                )
                run_id = cursor.lastrowid
                self._record_findings(
                    run_id, result.findings, generator_config, compare_level,
                    version, reduce_findings,
                    precomputed=getattr(result, "reduced_fingerprints", None),
                )
                return run_id

        return self._retrying(_write)

    def _record_findings(
        self,
        run_id: int,
        findings: list[dict],
        generator_config: GeneratorConfig | None,
        compare_level: str,
        version: int | None,
        reduce_findings: bool,
        precomputed: dict[int, str | None] | None = None,
    ) -> None:
        deduped: dict[str, dict] = {}
        for index, finding in enumerate(findings):
            fingerprint = (
                precomputed.get(index) if precomputed is not None else None
            )
            if fingerprint is None:
                # no queue ran (reduce here if asked), or the queue
                # fell back on this finding (structural signature)
                fingerprint = finding_fingerprint(
                    finding, generator_config, compare_level, version,
                    reduce=reduce_findings and precomputed is None,
                )
            entry = deduped.setdefault(
                fingerprint,
                {"kind": finding["kind"], "detail": finding, "seeds": set()},
            )
            entry["seeds"].add(finding["seed"])
        for fingerprint, entry in sorted(deduped.items()):
            existing = self._conn.execute(
                "SELECT seeds_json FROM findings WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if existing is None:
                self._conn.execute(
                    """INSERT INTO findings (
                        fingerprint, kind, detail_json, seeds_json,
                        first_seen_run, last_seen_run, occurrences
                    ) VALUES (?, ?, ?, ?, ?, ?, 1)""",
                    (
                        fingerprint,
                        entry["kind"],
                        json.dumps(entry["detail"], sort_keys=True),
                        json.dumps(sorted(entry["seeds"])),
                        run_id,
                        run_id,
                    ),
                )
            else:
                seeds = set(json.loads(existing["seeds_json"]))
                seeds.update(entry["seeds"])
                self._conn.execute(
                    """UPDATE findings SET last_seen_run = ?,
                        occurrences = occurrences + 1, seeds_json = ?
                        WHERE fingerprint = ?""",
                    (run_id, json.dumps(sorted(seeds)), fingerprint),
                )
            for seed in sorted(entry["seeds"]):
                self._conn.execute(
                    """INSERT OR IGNORE INTO run_findings
                        (run_id, fingerprint, seed, kind)
                        VALUES (?, ?, ?, ?)""",
                    (run_id, fingerprint, seed, entry["kind"]),
                )

    # -- case lifecycle ------------------------------------------------

    def _resolve_case(self, fingerprint: str) -> str:
        """Follow a reduced-merge alias to the surviving case."""
        row = self._conn.execute(
            "SELECT canonical FROM case_aliases WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return str(row["canonical"]) if row is not None else fingerprint

    def record_case(
        self,
        finding: dict,
        fingerprint: str,
        *,
        job: str | None = None,
        now: float | None = None,
    ) -> tuple[str, bool]:
        """Upsert one finding into the lifecycle table (state ``found``
        for new cases; existing cases keep their state and merge seeds).

        ``job`` is the folding service job's id and doubles as the
        idempotency key: re-folding the same job after a crash or drain
        neither bumps ``occurrences`` nor changes the row, so a resumed
        job ledger equals an uninterrupted one.  Returns the canonical
        fingerprint (an earlier reduced-merge may have re-pointed this
        case) and whether the case is new.
        """
        stamp = time.time() if now is None else now

        def _write() -> tuple[str, bool]:
            with self._conn:
                canonical = self._resolve_case(fingerprint)
                row = self._conn.execute(
                    "SELECT * FROM cases WHERE fingerprint = ?", (canonical,)
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        """INSERT INTO cases (
                            fingerprint, kind, state, seeds_json,
                            detail_json, reduced_fingerprint, bisect_json,
                            jobs_json, occurrences, updated_at
                        ) VALUES (?, ?, 'found', ?, ?, NULL, NULL, ?, 1, ?)""",
                        (
                            canonical,
                            finding["kind"],
                            json.dumps([finding["seed"]]),
                            json.dumps(finding, sort_keys=True),
                            json.dumps([job] if job is not None else []),
                            stamp,
                        ),
                    )
                    return canonical, True
                seeds = set(json.loads(row["seeds_json"]))
                seeds.add(finding["seed"])
                jobs = list(json.loads(row["jobs_json"]))
                occurrences = int(row["occurrences"])
                if job is None:
                    occurrences += 1
                elif job not in jobs:
                    jobs.append(job)
                    occurrences += 1
                self._conn.execute(
                    """UPDATE cases SET seeds_json = ?, jobs_json = ?,
                        occurrences = ?, updated_at = ?
                        WHERE fingerprint = ?""",
                    (
                        json.dumps(sorted(seeds)),
                        json.dumps(sorted(jobs)),
                        occurrences,
                        stamp,
                        canonical,
                    ),
                )
                return canonical, False

        return self._retrying(_write)

    def advance_case(
        self,
        fingerprint: str,
        state: str,
        *,
        reduced_fingerprint: str | None = None,
        bisect: dict | None = None,
        now: float | None = None,
    ) -> tuple[str, bool]:
        """Move a case forward along :data:`CASE_STATES`.

        Transitions are forward-only: advancing to the current state or
        an earlier one is an idempotent no-op (this is what lets a
        resumed job re-fold blindly).  Advancing to ``reduced``
        requires the paper-faithful ``reduced_fingerprint``; if another
        case already reduced to the same program the two *merge* (the
        survivor keeps its fingerprint, this one becomes an alias).
        Returns ``(canonical fingerprint, advanced?)``.
        """
        if state not in CASE_STATES[1:]:
            raise ValueError(
                f"cannot advance to {state!r}; one of {CASE_STATES[1:]}"
            )
        if state == "reduced" and reduced_fingerprint is None:
            raise ValueError("advancing to 'reduced' needs the reduced "
                             "fingerprint")
        stamp = time.time() if now is None else now

        def _write() -> tuple[str, bool]:
            with self._conn:
                canonical = self._resolve_case(fingerprint)
                row = self._conn.execute(
                    "SELECT * FROM cases WHERE fingerprint = ?", (canonical,)
                ).fetchone()
                if row is None:
                    raise KeyError(f"no case {fingerprint!r} in the ledger")
                if CASE_STATES.index(state) <= CASE_STATES.index(row["state"]):
                    return canonical, False
                if state == "reduced":
                    survivor = self._conn.execute(
                        """SELECT * FROM cases WHERE reduced_fingerprint = ?
                            AND fingerprint != ?""",
                        (reduced_fingerprint, canonical),
                    ).fetchone()
                    if survivor is not None:
                        return self._merge_case(row, survivor, stamp), True
                sets = ["state = ?", "updated_at = ?"]
                params: list[Any] = [state, stamp]
                if reduced_fingerprint is not None:
                    sets.append("reduced_fingerprint = ?")
                    params.append(reduced_fingerprint)
                if bisect is not None:
                    sets.append("bisect_json = ?")
                    params.append(json.dumps(bisect, sort_keys=True))
                params.append(canonical)
                self._conn.execute(
                    f"UPDATE cases SET {', '.join(sets)}"
                    " WHERE fingerprint = ?",
                    params,
                )
                return canonical, True

        return self._retrying(_write)

    def _merge_case(
        self, merged: sqlite3.Row, survivor: sqlite3.Row, stamp: float
    ) -> str:
        """Two structural cases reduced to the same program: fold
        ``merged`` into ``survivor`` and leave an alias behind (runs
        inside the caller's transaction)."""
        seeds = set(json.loads(survivor["seeds_json"]))
        seeds.update(json.loads(merged["seeds_json"]))
        jobs = set(json.loads(survivor["jobs_json"]))
        jobs.update(json.loads(merged["jobs_json"]))
        occurrences = int(survivor["occurrences"]) + int(
            merged["occurrences"]
        )
        self._conn.execute(
            """UPDATE cases SET seeds_json = ?, jobs_json = ?,
                occurrences = ?, updated_at = ? WHERE fingerprint = ?""",
            (
                json.dumps(sorted(seeds)),
                json.dumps(sorted(jobs)),
                occurrences,
                stamp,
                survivor["fingerprint"],
            ),
        )
        self._conn.execute(
            "DELETE FROM cases WHERE fingerprint = ?",
            (merged["fingerprint"],),
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO case_aliases (fingerprint, canonical)"
            " VALUES (?, ?)",
            (merged["fingerprint"], survivor["fingerprint"]),
        )
        # anything already aliased to the merged case follows it
        self._conn.execute(
            "UPDATE case_aliases SET canonical = ? WHERE canonical = ?",
            (survivor["fingerprint"], merged["fingerprint"]),
        )
        return str(survivor["fingerprint"])

    def case(self, fingerprint: str) -> CaseRow | None:
        """One case by fingerprint, following merge aliases."""
        row = self._conn.execute(
            "SELECT * FROM cases WHERE fingerprint = ?",
            (self._resolve_case(fingerprint),),
        ).fetchone()
        return self._case_row(row) if row is not None else None

    def cases(self, state: str | None = None) -> list[CaseRow]:
        """Case rows in fingerprint order, optionally one state only."""
        if state is not None and state not in CASE_STATES:
            raise ValueError(f"unknown state {state!r}; one of {CASE_STATES}")
        if state is None:
            rows = self._conn.execute(
                "SELECT * FROM cases ORDER BY fingerprint"
            )
        else:
            rows = self._conn.execute(
                "SELECT * FROM cases WHERE state = ? ORDER BY fingerprint",
                (state,),
            )
        return [self._case_row(r) for r in rows]

    def lifecycle_counts(self) -> dict[str, int]:
        """Case count per lifecycle state (every state present)."""
        counts = dict.fromkeys(CASE_STATES, 0)
        for state, count in self._conn.execute(
            "SELECT state, COUNT(*) FROM cases GROUP BY state"
        ):
            counts[str(state)] = int(count)
        return counts

    def lifecycle_rows(self, *, timestamps: bool = False) -> list[dict]:
        """Canonical dump of the lifecycle table (plus merge aliases),
        by default without wall-clock fields — the comparable form the
        drain-then-resume determinism contract is checked against."""
        dump = [c.to_dict(timestamps=timestamps) for c in self.cases()]
        aliases = self._conn.execute(
            "SELECT fingerprint, canonical FROM case_aliases"
            " ORDER BY fingerprint"
        ).fetchall()
        if aliases:
            dump.append({
                "aliases": {str(f): str(c) for f, c in aliases},
            })
        return dump

    def lifecycle_digest(self) -> str:
        """sha256 over the canonical timestamp-free lifecycle dump."""
        payload = json.dumps(self.lifecycle_rows(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    @staticmethod
    def _case_row(row: sqlite3.Row) -> CaseRow:
        return CaseRow(
            fingerprint=row["fingerprint"],
            kind=row["kind"],
            state=row["state"],
            seeds=json.loads(row["seeds_json"]),
            detail=json.loads(row["detail_json"]),
            reduced_fingerprint=row["reduced_fingerprint"],
            bisect=(
                json.loads(row["bisect_json"])
                if row["bisect_json"] is not None
                else None
            ),
            jobs=json.loads(row["jobs_json"]),
            occurrences=row["occurrences"],
            updated_at=row["updated_at"],
        )

    # -- queries -------------------------------------------------------

    def runs(
        self,
        config: str | None = None,
        limit: int | None = None,
        since: float | None = None,
    ) -> list[RunRow]:
        """Run rows, newest first.  ``config`` filters on a
        config-fingerprint prefix; ``since`` on ``started_at``."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if config:
            clauses.append("config_fingerprint LIKE ?")
            params.append(config + "%")
        if since is not None:
            clauses.append("started_at >= ?")
            params.append(since)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        return [self._run_row(r) for r in self._conn.execute(query, params)]

    def run(self, run_id: int) -> RunRow | None:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return self._run_row(row) if row is not None else None

    def findings(self, run_id: int | None = None) -> list[FindingRow]:
        """All finding rows (fingerprint order), or those seen in one
        run."""
        if run_id is None:
            rows = self._conn.execute(
                "SELECT * FROM findings ORDER BY fingerprint"
            )
        else:
            rows = self._conn.execute(
                """SELECT f.* FROM findings f
                    JOIN (SELECT DISTINCT fingerprint FROM run_findings
                          WHERE run_id = ?) rf
                    ON f.fingerprint = rf.fingerprint
                    ORDER BY f.fingerprint""",
                (run_id,),
            )
        return [
            FindingRow(
                fingerprint=r["fingerprint"],
                kind=r["kind"],
                detail=json.loads(r["detail_json"]),
                seeds=json.loads(r["seeds_json"]),
                first_seen_run=r["first_seen_run"],
                last_seen_run=r["last_seen_run"],
                occurrences=r["occurrences"],
            )
            for r in rows
        ]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    @staticmethod
    def _run_row(row: sqlite3.Row) -> RunRow:
        return RunRow(
            run_id=row["run_id"],
            started_at=row["started_at"],
            wall_time=row["wall_time"],
            config_fingerprint=row["config_fingerprint"],
            programs=row["programs"],
            seed_base=row["seed_base"],
            jobs=row["jobs"],
            incremental=bool(row["incremental"]),
            compare_level=row["compare_level"],
            version=row["version"],
            completed=row["completed"],
            skipped=row["skipped"],
            crashed=row["crashed"],
            budget_exceeded=row["budget_exceeded"],
            degraded=row["degraded"],
            total_markers=row["total_markers"],
            total_dead=row["total_dead"],
            total_alive=row["total_alive"],
            findings=row["findings"],
            soundness_violations=row["soundness_violations"],
            interp=row["interp"],
            window=row["sched_window"],
            reduce_jobs=row["reduce_jobs"],
            reduction_oracle_calls=row["reduction_oracle_calls"],
            reduction_speculative_wasted=row["reduction_speculative_wasted"],
            reduction_wall_time=row["reduction_wall_time"],
            store_seeds_skipped=row["store_seeds_skipped"],
            store_compile_hits=row["store_compile_hits"],
            store_truth_hits=row["store_truth_hits"],
            store_oracle_hits=row["store_oracle_hits"],
            by_level=json.loads(row["by_level_json"]),
            cross_compiler=json.loads(row["cross_compiler_json"]),
            cross_level=json.loads(row["cross_level_json"]),
            shape_yield=json.loads(row["shape_yield_json"]),
            pass_attribution=json.loads(row["pass_attribution_json"]),
            crash_buckets=json.loads(row["crash_buckets_json"]),
            metrics=json.loads(row["metrics_json"]),
        )
