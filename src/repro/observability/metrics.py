"""Metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is a thread-safe, name-keyed collection of
instruments.  Instruments are created on first use::

    registry.counter("campaign.programs").inc()
    registry.histogram("compile_latency_ms/gcclike-O2@9").observe(4.2)

Histograms keep every observation (the corpus scales here are small —
thousands of compiles per campaign) so summaries can report exact
percentiles; :meth:`MetricsRegistry.to_dict` snapshots everything as
plain JSON-serializable data.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution of observed values with exact percentile summaries."""

    def __init__(self) -> None:
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "sum": self.sum,
            "mean": self.mean,
            "min": ordered[0],
            "max": ordered[-1],
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def to_dict(self) -> dict[str, Any]:
        return {"type": "histogram", **self.summary()}


class MetricsRegistry:
    """Get-or-create store of named instruments."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls()
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of every instrument."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: instrument.to_dict() for name, instrument in sorted(items)}

    def dump(self) -> dict[str, Any]:
        """Raw, picklable snapshot for cross-process merging.

        Unlike :meth:`to_dict` (which summarizes histograms down to
        percentiles), the dump carries every histogram observation, so
        a parent registry can fold worker snapshots in via
        :meth:`merge` without losing distribution information.
        """
        with self._lock:
            items = list(self._instruments.items())
        out: dict[str, Any] = {}
        for name, instrument in sorted(items):
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                with instrument._lock:
                    values = list(instrument.values)
                out[name] = {"type": "histogram", "values": values}
        return out

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`dump` snapshot into this registry.

        Counters and gauges accumulate additively (worker gauges are
        treated as partial tallies); histograms extend with the
        snapshot's observations in their original order, so merging
        worker snapshots in a deterministic order reproduces the
        sequential observation sequence exactly.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).add(data["value"])
            elif kind == "histogram":
                histogram = self.histogram(name)
                with histogram._lock:
                    histogram.values.extend(data["values"])
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
