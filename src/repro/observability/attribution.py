"""Per-pass profiles and marker attribution, read off a trace.

The pipeline emits one ``pipeline.pass`` span per configured pass (see
:mod:`repro.compilers.pipeline`) carrying wall time, IR size before and
after, and the set of markers whose calls disappeared during that pass.
This module aggregates those spans into the per-pass records behind
``dce-hunt profile`` and the Table 3/4-style component attribution —
the data ``benchmarks/bench_ablation_pass_contribution.py`` previously
recomputed by re-running ablated pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import Span, Tracer

PASS_SPAN = "pipeline.pass"
PIPELINE_SPAN = "pipeline.run"


@dataclass
class PassProfile:
    """One pass execution, as recorded by its span."""

    index: int
    name: str
    wall_time: float  # seconds
    instrs_before: int
    instrs_after: int
    blocks_before: int
    blocks_after: int
    changed: bool
    markers_eliminated: tuple[str, ...]

    @property
    def instr_delta(self) -> int:
        return self.instrs_after - self.instrs_before

    @property
    def block_delta(self) -> int:
        return self.blocks_after - self.blocks_before


def pass_profiles(spans_or_tracer: Tracer | list[Span]) -> list[PassProfile]:
    """Extract :class:`PassProfile` records, in pipeline order."""
    if isinstance(spans_or_tracer, Tracer):
        spans = spans_or_tracer.find(PASS_SPAN)
    else:
        spans = sorted(
            (s for s in spans_or_tracer if s.name == PASS_SPAN),
            key=lambda s: s.start,
        )
    profiles = []
    for span in spans:
        a = span.attrs
        profiles.append(
            PassProfile(
                index=a.get("index", len(profiles)),
                name=a.get("pass", "?"),
                wall_time=span.duration,
                instrs_before=a.get("instrs_before", 0),
                instrs_after=a.get("instrs_after", 0),
                blocks_before=a.get("blocks_before", 0),
                blocks_after=a.get("blocks_after", 0),
                changed=bool(a.get("changed", False)),
                markers_eliminated=tuple(a.get("markers_eliminated", ())),
            )
        )
    return profiles


def marker_attribution(spans_or_tracer: Tracer | list[Span]) -> dict[str, str]:
    """Map each eliminated marker to the pass that killed it."""
    killed_by: dict[str, str] = {}
    for profile in pass_profiles(spans_or_tracer):
        for marker in profile.markers_eliminated:
            killed_by.setdefault(marker, profile.name)
    return killed_by


@dataclass
class PassContribution:
    """A pass's tally aggregated over many pipeline runs."""

    name: str
    runs: int = 0
    changed_runs: int = 0
    wall_time: float = 0.0
    instr_delta: int = 0
    markers_eliminated: list[str] = field(default_factory=list)


def aggregate_contributions(
    profile_lists: list[list[PassProfile]],
) -> dict[str, PassContribution]:
    """Fold per-run profiles into per-pass totals, keyed by pass name
    (a pass appearing several times in the pipeline folds into one
    entry, like the paper's per-component tables)."""
    totals: dict[str, PassContribution] = {}
    for profiles in profile_lists:
        for p in profiles:
            entry = totals.setdefault(p.name, PassContribution(p.name))
            entry.runs += 1
            entry.changed_runs += int(p.changed)
            entry.wall_time += p.wall_time
            entry.instr_delta += p.instr_delta
            entry.markers_eliminated.extend(p.markers_eliminated)
    return totals
