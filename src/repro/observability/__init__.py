"""Observability: pipeline tracing, metrics, and trace exporters.

The substrate behind ``dce-hunt analyze --trace``, ``dce-hunt
profile`` and ``dce-hunt campaign --metrics-out``: a span tracer wired
through the pass pipeline, interpreter and campaign runner, a metrics
registry for campaign-level tallies and latency histograms, and
JSON/JSONL exporters plus per-pass attribution readers.  The telemetry
pipeline lives here too: the typed campaign event stream
(:mod:`.events`), the persistent SQLite run ledger (:mod:`.ledger`),
run reports and cross-run regression comparison (:mod:`.report`), and
the live TTY dashboard (:mod:`.dashboard`).
"""

from .attribution import (
    PASS_SPAN,
    PIPELINE_SPAN,
    PassContribution,
    PassProfile,
    aggregate_contributions,
    marker_attribution,
    pass_profiles,
)
from .export import (
    format_trace,
    read_spans_jsonl,
    spans_to_dicts,
    write_spans_jsonl,
    write_trace_json,
)
from .dashboard import LiveDashboard, ProgressPrinter
from .events import (
    Event,
    EventBus,
    JsonlEventWriter,
    read_events_jsonl,
    strip_timestamps,
)
from .ledger import (
    CASE_STATES,
    CaseRow,
    FindingRow,
    RunLedger,
    RunRow,
    config_fingerprint,
    finding_fingerprint,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    CompareThresholds,
    RunComparison,
    compare_runs,
    comparison_text,
    run_report_html,
    run_report_text,
)
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CASE_STATES",
    "NULL_SPAN",
    "PASS_SPAN",
    "PIPELINE_SPAN",
    "CaseRow",
    "CompareThresholds",
    "Counter",
    "Event",
    "EventBus",
    "FindingRow",
    "Gauge",
    "Histogram",
    "JsonlEventWriter",
    "LiveDashboard",
    "MetricsRegistry",
    "PassContribution",
    "PassProfile",
    "ProgressPrinter",
    "RunComparison",
    "RunLedger",
    "RunRow",
    "Span",
    "Tracer",
    "aggregate_contributions",
    "compare_runs",
    "comparison_text",
    "config_fingerprint",
    "current_tracer",
    "finding_fingerprint",
    "format_trace",
    "marker_attribution",
    "pass_profiles",
    "read_events_jsonl",
    "read_spans_jsonl",
    "run_report_html",
    "run_report_text",
    "set_tracer",
    "spans_to_dicts",
    "strip_timestamps",
    "use_tracer",
    "write_spans_jsonl",
    "write_trace_json",
]
