"""Observability: pipeline tracing, metrics, and trace exporters.

The substrate behind ``dce-hunt analyze --trace``, ``dce-hunt
profile`` and ``dce-hunt campaign --metrics-out``: a span tracer wired
through the pass pipeline, interpreter and campaign runner, a metrics
registry for campaign-level tallies and latency histograms, and
JSON/JSONL exporters plus per-pass attribution readers.
"""

from .attribution import (
    PASS_SPAN,
    PIPELINE_SPAN,
    PassContribution,
    PassProfile,
    aggregate_contributions,
    marker_attribution,
    pass_profiles,
)
from .export import (
    format_trace,
    read_spans_jsonl,
    spans_to_dicts,
    write_spans_jsonl,
    write_trace_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_SPAN",
    "PASS_SPAN",
    "PIPELINE_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PassContribution",
    "PassProfile",
    "Span",
    "Tracer",
    "aggregate_contributions",
    "current_tracer",
    "format_trace",
    "marker_attribution",
    "pass_profiles",
    "read_spans_jsonl",
    "set_tracer",
    "spans_to_dicts",
    "use_tracer",
    "write_spans_jsonl",
    "write_trace_json",
]
