"""Span-based tracing for the compilation pipeline.

A :class:`Tracer` records a tree of timed :class:`Span` objects.  Code
under instrumentation opens spans with a context manager::

    with tracer.span("pipeline.pass", pass_name="sccp") as span:
        ...
        span.set("changed", True)

Spans nest (the enclosing span on the same thread becomes the parent)
and the tracer is thread-safe: each thread keeps its own span stack,
finished spans are appended under a lock.

Tracing is opt-in.  The module-level *current tracer* defaults to a
disabled tracer whose :meth:`Tracer.span` returns a shared no-op
context manager — the hot path pays one attribute check and no
allocation, so instrumented code can call it unconditionally.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class Span:
    """One timed operation, with free-form attributes."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, Any],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None

    @property
    def duration(self) -> float:
        """Wall time in seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def update(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(
            data["span_id"],
            data.get("parent_id"),
            data["name"],
            dict(data.get("attrs", {})),
            data.get("start", 0.0),
        )
        span.end = span.start + data.get("duration", 0.0)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} #{self.span_id} {self.duration * 1e3:.3f}ms>"


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Stateless, reusable, reentrant context manager for the disabled
    path: no allocation per ``tracer.span(...)`` call."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Collects spans.  Disabled tracers record nothing."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int | None = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.max_spans = max_spans
        self.dropped = 0
        self.spans: list[Span] = []  # finished spans, completion order
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- recording --------------------------------------------------------

    def span(self, name: str, /, **attrs: Any):
        """Context manager opening a span named ``name`` (positional-only,
        so ``name`` is also usable as an attribute key).

        Returns a shared no-op context manager when disabled.
        """
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return self._record(name, attrs)

    @contextmanager
    def _record(self, name: str, attrs: dict[str, Any]):
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(next(self._ids), parent_id, name, attrs, self.clock())
        stack.append(span)
        try:
            yield span
        finally:
            span.end = self.clock()
            stack.pop()
            with self._lock:
                if self.max_spans is not None and len(self.spans) >= self.max_spans:
                    self.dropped += 1
                else:
                    self.spans.append(span)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def adopt_spans(
        self,
        span_dicts: list[dict[str, Any]],
        parent_id: int | None = None,
    ) -> list[Span]:
        """Re-parent serialized spans (e.g. from a worker process)
        under this tracer.

        Every adopted span gets a fresh id from this tracer's counter;
        parent links *within* the batch are remapped to the new ids,
        and spans whose parent is not part of the batch (the worker's
        roots) attach to ``parent_id``.  Spans append in the given
        order (the worker's completion order) and respect
        ``max_spans``.  Returns the adopted spans.
        """
        if not self.enabled or not span_dicts:
            return []
        spans = [Span.from_dict(d) for d in span_dicts]
        mapping = {span.span_id: next(self._ids) for span in spans}
        for span in spans:
            old_parent = span.parent_id
            span.span_id = mapping[span.span_id]
            span.parent_id = (
                mapping[old_parent] if old_parent in mapping else parent_id
            )
        with self._lock:
            for span in spans:
                if self.max_spans is not None and len(self.spans) >= self.max_spans:
                    self.dropped += 1
                else:
                    self.spans.append(span)
        return spans

    # -- inspection -------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All finished spans with ``name``, in start order."""
        return sorted(
            (s for s in self.spans if s.name == name), key=lambda s: s.start
        )

    def roots(self) -> list[Span]:
        """Finished spans with no (finished) parent, in start order."""
        ids = {s.span_id for s in self.spans}
        return sorted(
            (s for s in self.spans if s.parent_id not in ids),
            key=lambda s: s.start,
        )

    def children(self, span: Span) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: s.start,
        )

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped = 0


#: Process-wide tracer consulted by instrumented code when no tracer is
#: passed explicitly.  Disabled by default: tracing is strictly opt-in.
_DISABLED = Tracer(enabled=False)
_active = _DISABLED
_active_lock = threading.Lock()


def current_tracer() -> Tracer:
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the current tracer (None → disabled).

    Returns the previously installed tracer.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = tracer if tracer is not None else _DISABLED
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the current tracer."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
