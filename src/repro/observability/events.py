"""Structured campaign event stream.

A campaign narrates itself as a sequence of typed events — one
``campaign_start``, a ``seed_start``/outcome pair per seed (the
outcome is ``seed_done``, ``crash`` or ``budget_exceeded``;
checkpoint-replayed seeds emit ``checkpoint_replayed`` instead),
``finding`` events as the differential layer surfaces them,
``reduction.round``/``reduction.commit`` progress when findings are
reduced, and one ``campaign_end``.  The :class:`EventBus` fans each event out to
subscribers (the JSONL writer behind ``campaign --events-out``, the
live dashboard behind ``--dashboard``, the plain progress printer
behind ``--progress``).

Determinism is a hard contract: the stream (sequence numbers, types
and attributes — everything except wall-clock timestamps) is
byte-identical between ``jobs=1`` and ``jobs=N``.  Workers therefore
never write to the bus directly; they record their per-seed events
into the :class:`~repro.core.parallel.SeedEnvelope` and the parent
re-emits them in seed order, assigning fresh sequence numbers and
timestamps.  Event attributes carry counts and names only, never
durations — wall time lives solely in the ``ts`` field so "equal
modulo timestamps" is a per-line field drop, not a heuristic.

The JSONL file format mirrors the checkpoint journal's crash
tolerance: :func:`read_events_jsonl` skips blank and torn trailing
lines (an interrupt mid-write loses at most the event in flight).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, TextIO

# -- event types -----------------------------------------------------------

CAMPAIGN_START = "campaign_start"
SEED_START = "seed_start"
SEED_DONE = "seed_done"
FINDING = "finding"
CRASH = "crash"
BUDGET_EXCEEDED = "budget_exceeded"
CHECKPOINT_REPLAYED = "checkpoint_replayed"
#: finding reduction progress (one per delta round / committed shrink;
#: emitted in finding order when the campaign drains its reduction
#: queue, so the stream stays deterministic at any --reduce-jobs)
REDUCTION_ROUND = "reduction.round"
REDUCTION_COMMIT = "reduction.commit"
CAMPAIGN_END = "campaign_end"

#: every event type the campaign engine emits, in no particular order
EVENT_TYPES = frozenset({
    CAMPAIGN_START,
    SEED_START,
    SEED_DONE,
    FINDING,
    CRASH,
    BUDGET_EXCEEDED,
    CHECKPOINT_REPLAYED,
    REDUCTION_ROUND,
    REDUCTION_COMMIT,
    CAMPAIGN_END,
})

# -- service event types (PR 10) -------------------------------------------
# The campaign *service* narrates job and case-lifecycle progress on its
# own bus, separate from the per-campaign stream above (which stays
# byte-identical to non-service runs by contract).

JOB_SUBMITTED = "job.submitted"
JOB_STARTED = "job.started"
JOB_RETRIED = "job.retried"
JOB_DONE = "job.done"
JOB_FAILED = "job.failed"
CASE_FOUND = "case.found"
CASE_ADVANCED = "case.advanced"

#: every event type the campaign service emits
SERVICE_EVENT_TYPES = frozenset({
    JOB_SUBMITTED,
    JOB_STARTED,
    JOB_RETRIED,
    JOB_DONE,
    JOB_FAILED,
    CASE_FOUND,
    CASE_ADVANCED,
})


@dataclass(frozen=True)
class Event:
    """One campaign event: a type, a bus-assigned sequence number, a
    wall-clock timestamp, and JSON-serializable attributes."""

    seq: int
    ts: float
    type: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Event":
        return cls(
            seq=data["seq"],
            ts=data["ts"],
            type=data["type"],
            attrs=dict(data.get("attrs", {})),
        )


Subscriber = Callable[[Event], None]


class EventBus:
    """Thread-safe fan-out of campaign events to subscribers.

    ``emit`` assigns the sequence number and timestamp under the bus
    lock, so concurrent emitters (the metrics mirror thread, a
    subscriber re-entering) still observe a gap-free, strictly
    increasing ``seq``.  Subscriber exceptions propagate to the
    emitter — a broken sink should fail the campaign loudly rather
    than silently drop telemetry.
    """

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []
        self._seq = 0
        self._lock = threading.Lock()

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            self._subscribers.remove(subscriber)

    def emit(self, type: str, **attrs: Any) -> Event:
        import time

        with self._lock:
            event = Event(self._seq, time.time(), type, attrs)
            self._seq += 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(event)
        return event

    def emit_all(self, records: Iterable[tuple[str, dict[str, Any]]]) -> None:
        """Re-emit recorded ``(type, attrs)`` pairs (the parallel
        merge loop replaying a worker's per-seed events in seed
        order); each gets a fresh seq/ts from this bus."""
        for type_, attrs in records:
            self.emit(type_, **attrs)


# -- per-seed event records ------------------------------------------------


def report_status(report) -> str:
    """The journal-compatible status string for a
    :class:`~repro.core.resilience.SeedReport`."""
    if report.budget_exceeded:
        return "budget"
    if report.crash is not None:
        return "crash"
    if report.outcome is None:
        return "skipped"
    return "ok"


def seed_outcome_records(report) -> list[tuple[str, dict[str, Any]]]:
    """The outcome events for one finished
    :class:`~repro.core.resilience.SeedReport`, as ``(type, attrs)``
    records.

    Shared verbatim by the sequential loop (which emits them straight
    onto the bus) and the pool workers (which ship them in the
    :class:`~repro.core.parallel.SeedEnvelope` for in-order
    re-emission), so both job counts produce identical streams.
    """
    if report.budget_exceeded:
        return [(BUDGET_EXCEEDED, {"seed": report.seed})]
    if report.crash is not None:
        crash = report.crash
        return [(CRASH, {
            "seed": report.seed,
            "phase": crash.phase,
            "exc_type": crash.exc_type,
            "bucket": crash.bucket,
        })]
    if report.outcome is None:
        return [(SEED_DONE, {"seed": report.seed, "status": "skipped"})]
    attrs: dict[str, Any] = {
        "seed": report.seed,
        "status": "ok",
        "markers": report.outcome.marker_count,
        "dead": report.outcome.dead_count,
    }
    if report.degraded:
        attrs["degraded"] = True
    return [(SEED_DONE, attrs)]


def seed_event_records(report) -> list[tuple[str, dict[str, Any]]]:
    """``seed_start`` plus the outcome events for one seed (the
    worker-side recording; the sequential loop emits ``seed_start``
    before analysis instead, which re-serializes to the same order)."""
    return [
        (SEED_START, {"seed": report.seed}),
        *seed_outcome_records(report),
    ]


# -- JSONL sink / source ---------------------------------------------------


class JsonlEventWriter:
    """Bus subscriber appending one JSON object per event.

    Lines are flushed per event (mirroring the checkpoint journal's
    interruption safety), and keys are sorted so equal events
    serialize to equal bytes.
    """

    def __init__(self, path_or_file: str | TextIO) -> None:
        if isinstance(path_or_file, str):
            self._file: TextIO = open(path_or_file, "w")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False
        self.written = 0

    def __call__(self, event: Event) -> None:
        self._file.write(json.dumps(event.to_dict(), sort_keys=True))
        self._file.write("\n")
        self._file.flush()
        self.written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events_jsonl(path_or_file: str | TextIO) -> list[Event]:
    """Parse an events JSONL file, skipping blank and torn lines.

    A campaign interrupted mid-write leaves at most one truncated
    trailing line; like the checkpoint journal loader, the reader
    drops anything that fails to parse instead of failing the whole
    file.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            return read_events_jsonl(handle)
    events: list[Event] = []
    for line in path_or_file:
        line = line.strip()
        if not line:
            continue
        try:
            events.append(Event.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            continue  # torn tail write; drop the partial event
    return events


def strip_timestamps(events: Iterable[Event]) -> list[dict[str, Any]]:
    """Events as dicts with the ``ts`` field removed — the
    determinism contract ("byte-identical modulo timestamps") in
    comparable form."""
    out = []
    for event in events:
        data = event.to_dict()
        del data["ts"]
        out.append(data)
    return out
