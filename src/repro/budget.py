"""Cooperative per-seed wall-clock budgets.

A campaign that analyzes hundreds of thousands of random programs must
survive the occasional pathological seed — one whose generated loops
explode under unrolling, or whose interpretation crawls.  Hard
process-level timeouts are blunt (they lose the whole shard and any
buffered metrics), so the budget here is *cooperative*: the campaign
arms a deadline before each seed (:func:`deadline`), and long-running
loops — pass boundaries in the pipeline, the interpreter's step check —
poll :func:`check_deadline`, which raises :class:`SeedBudgetExceeded`
once the wall clock passes the limit.  The campaign layer catches that
exception and records the seed as ``budget_exceeded`` instead of
hanging.

This module sits below every other ``repro`` package (it imports only
the standard library) precisely so the pipeline, the interpreter, and
the fault-injection harness can all poll it without import cycles.
The deadline is *thread-local*: campaigns parallelize across processes
(each worker analyzes one seed at a time), but the campaign *service*
(:mod:`repro.service`) runs several jobs concurrently in threads of
one process, each arming its own independent deadline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class SeedBudgetExceeded(RuntimeError):
    """The current seed exceeded its wall-clock budget.

    Deliberately *not* a :class:`Exception` wrapped by the pass
    pipeline's crash containment: runaway work is a skip, not a crash.
    """


class _DeadlineState(threading.local):
    deadline: float | None = None


_STATE = _DeadlineState()


@contextmanager
def deadline(seconds: float | None) -> Iterator[None]:
    """Arm a wall-clock deadline ``seconds`` from now for the duration
    of the ``with`` block (``None`` = unlimited, zero overhead)."""
    if seconds is None:
        yield
        return
    previous = _STATE.deadline
    _STATE.deadline = time.monotonic() + seconds
    try:
        yield
    finally:
        _STATE.deadline = previous


def check_deadline() -> None:
    """Raise :class:`SeedBudgetExceeded` if the armed deadline passed.

    No-op (one thread-local read) when no deadline is armed, so hot
    loops can poll it unconditionally.
    """
    armed = _STATE.deadline
    if armed is not None and time.monotonic() > armed:
        raise SeedBudgetExceeded(
            f"seed exceeded its wall-clock budget "
            f"({time.monotonic() - armed:.3f}s past the deadline)"
        )


def deadline_armed() -> bool:
    """Whether a deadline is currently active (used by spin faults to
    decide how long they may busy-wait)."""
    return _STATE.deadline is not None
