"""repro — reproduction of *Finding Missed Optimizations through the
Lens of Dead Code Elimination* (Theodoridis, Rigger & Su, ASPLOS 2022).

The package layers, bottom to top:

* :mod:`repro.lang` — MiniC, a deterministic UB-free C subset.
* :mod:`repro.generator` — Csmith-like random program generator.
* :mod:`repro.interp` — reference interpreter (ground truth).
* :mod:`repro.ir`, :mod:`repro.frontend`, :mod:`repro.passes`,
  :mod:`repro.backend` — a complete SSA optimizing compiler.
* :mod:`repro.compilers` — two compiler families (``gcclike``,
  ``llvmlike``) with five optimization levels and commit histories.
* :mod:`repro.core` — the paper's contribution: optimization markers,
  differential testing, primary missed-marker analysis, reduction,
  bisection, and the corpus campaign runner.
"""

__version__ = "1.0.0"
