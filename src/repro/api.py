"""High-level one-call API.

The shortest path from "I have a C-subset program" to "which compiler
misses what":

>>> from repro import api
>>> report = api.analyze_source('''
... int main() {
...   int x = 0;
...   if (x) { x = 1; }
...   return x;
... }''')
>>> report.missed["gcclike-O3"]  # doctest: +SKIP
frozenset()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .compilers import CompilerSpec, compile_minic
from .core.differential import ProgramAnalysis, analyze_markers
from .core.ground_truth import compute_ground_truth
from .core.markers import instrument_program
from .core.primary import build_marker_graph, primary_missed_markers
from .frontend.typecheck import check_program
from .lang import parse_program, print_program


@dataclass
class AnalysisReport:
    """Human-friendly summary of one program's marker analysis."""

    analysis: ProgramAnalysis
    missed: dict[str, frozenset[str]] = field(default_factory=dict)
    primary: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def dead_markers(self) -> frozenset[str]:
        return self.analysis.ground_truth.dead

    @property
    def alive_markers(self) -> frozenset[str]:
        return self.analysis.ground_truth.alive

    def summary(self) -> str:
        lines = [
            f"markers: {len(self.analysis.instrumented.markers)} "
            f"({len(self.dead_markers)} dead, {len(self.alive_markers)} alive)",
        ]
        for spec, missed in sorted(self.missed.items()):
            primary = self.primary.get(spec, frozenset())
            lines.append(
                f"  {spec}: missed {len(missed)} dead markers"
                f" ({len(primary)} primary)"
                + (f" -> {', '.join(sorted(missed))}" if missed else "")
            )
        return "\n".join(lines)


def default_specs() -> list[CompilerSpec]:
    return [
        CompilerSpec(family, level)
        for family in ("gcclike", "llvmlike")
        for level in ("O0", "O1", "Os", "O2", "O3")
    ]


def analyze_source(
    source: str,
    specs: list[CompilerSpec] | None = None,
    incremental: bool = True,
    verify_ir: bool = False,
) -> AnalysisReport:
    """Instrument, ground-truth, and differentially compile a program
    given as MiniC/C-subset source text.

    ``verify_ir`` runs the IR verifier after every optimization pass
    and fails loudly (naming the pass) if one produces malformed IR.
    """
    program = parse_program(source)
    return analyze_program(
        program, specs, incremental=incremental, verify_ir=verify_ir
    )


def analyze_program(
    program,
    specs: list[CompilerSpec] | None = None,
    incremental: bool = True,
    verify_ir: bool = False,
) -> AnalysisReport:
    specs = specs or default_specs()
    instrumented = instrument_program(program)
    info = check_program(instrumented.program)
    truth = compute_ground_truth(instrumented, info=info)
    analysis = analyze_markers(
        instrumented, specs, info=info, ground_truth=truth,
        incremental=incremental, verify_ir=verify_ir,
    )
    graph = build_marker_graph(instrumented, truth.executed_functions(), info)
    report = AnalysisReport(analysis)
    for spec in specs:
        missed = analysis.missed_vs_ideal(spec)
        eliminated = analysis.outcome(spec).eliminated
        primary = primary_missed_markers(instrumented, truth, eliminated, graph=graph)
        report.missed[str(spec)] = missed
        report.primary[str(spec)] = frozenset(missed & primary)
    return report


def instrumented_source(source: str) -> str:
    """The instrumented version of a program, as C text (step ① of the
    paper's Figure 1, for inspection)."""
    program = parse_program(source)
    instrumented = instrument_program(program)
    check_program(instrumented.program)
    return print_program(instrumented.program)


def compile_to_asm(source: str, family: str = "gcclike", level: str = "O2") -> str:
    """Compile source text and return the generated assembly."""
    return compile_minic(source, CompilerSpec(family, level)).asm
