"""Deterministic fault injection for resilience testing.

The campaign engine promises to survive pathological seeds: crashes
are contained into :class:`~repro.core.resilience.CrashEnvelope`\\ s,
runaway seeds hit their wall-clock budget, dead workers are restarted.
Those paths only fire on *rare* inputs in the wild, so tests and CI
prove them with injected faults instead: a picklable
:class:`FaultPlan` names **sites** (choke points the production code
already passes through) and the seeds at which each site should
misbehave.

Sites currently wired:

========================  ====================================================
``generate``              program generation (:mod:`repro.core.resilience`)
``instrument``            marker instrumentation + type check
``ground_truth``          interpreter-based liveness oracle
``analyze``               differential compilation + marker comparison
``incremental``           :meth:`IncrementalEngine.compile` only — faults
                          here vanish on the non-incremental retry, which
                          is exactly what the degraded-seed path needs
``pass:<name>``           :func:`execute_pass` boundary for one pass
``chaos``                 the registered no-op ``chaos`` pass (below)
``store_write``           :class:`~repro.store.ArtifactStore` write paths —
                          a ``raise`` here degrades the store to cold per
                          its never-crash contract (``store.errors`` bumps)
``worker_hang``           the service supervisor's per-job hang drill; a
                          ``spin`` here is converted into a job timeout by
                          the armed job deadline and retried with backoff
``serve:handler``         the service HTTP API's request dispatch (health
                          endpoints excluded — they must stay truthful);
                          a ``raise`` returns 500 and bumps
                          ``service.handler_errors``
``serve:drain``           between finishing in-flight jobs and the final
                          flush during graceful drain (``kill`` here is
                          the mid-drain-kill drill: the restarted daemon
                          must resume queued jobs exactly once)
========================  ====================================================

Service sites fault at *every* hit when the fault's ``seeds`` set is
empty; seed targeting applies only where a campaign seed is active
(``store_write`` during a campaign commit, for example).

Fault kinds:

* ``raise`` — raise :class:`InjectedFault` at the site;
* ``spin``  — busy-wait until the armed seed budget expires
  (:mod:`repro.budget`), modelling a runaway seed.  Without a budget
  the spin gives up after ``spin_seconds`` so tests can never hang;
* ``skip``  — raise :class:`~repro.interp.StepLimitExceeded`,
  modelling a program whose liveness oracle blows the interpreter
  budget (drives the campaign's pre-existing *skipped* path);
* ``kill``  — terminate the process with ``os._exit`` (worker-death
  drills for the process pool's restart/bisect recovery).

The installed plan is a per-process global so forked pool workers
inherit it; :func:`repro.core.parallel` additionally ships the parent's
plan through the pool initializer for spawn-only platforms.  With no
plan installed every hook is a single global ``None`` check.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..budget import check_deadline, deadline_armed

KINDS = ("raise", "spin", "skip", "kill")


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never raised in production)."""


@dataclass(frozen=True)
class Fault:
    """Misbehave at ``site`` when analyzing any of ``seeds``.

    An empty ``seeds`` set means *every* seed (and also contexts where
    no campaign seed is active, e.g. a bare ``run_pipeline`` call).
    """

    site: str
    kind: str = "raise"
    seeds: frozenset[int] = field(default_factory=frozenset)
    #: spin faults give up after this long when no budget is armed
    spin_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")

    def matches(self, site: str, seed: int | None) -> bool:
        if site != self.site:
            return False
        return not self.seeds or seed in self.seeds


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of faults."""

    faults: tuple[Fault, ...] = ()

    def fault_at(self, site: str, seed: int | None) -> Fault | None:
        for fault in self.faults:
            if fault.matches(site, seed):
                return fault
        return None


def parse_fault(text: str) -> Fault:
    """Parse the CLI's ``site:kind[:seed,seed,...]`` fault syntax.

    Examples: ``generate:raise:3,11``, ``ground_truth:spin:17``,
    ``pass:gvn:raise:5`` (the site itself may contain one colon).
    """
    parts = text.split(":")
    # the kind is the first recognized keyword; everything before it is
    # the site (which may itself contain a colon, e.g. "pass:gvn")
    for index in range(1, len(parts)):
        if parts[index] in KINDS:
            site = ":".join(parts[:index])
            kind = parts[index]
            rest = parts[index + 1:]
            break
    else:
        raise ValueError(
            f"bad fault spec {text!r}: expected site:kind[:seeds] with "
            f"kind one of {KINDS}"
        )
    if len(rest) > 1:
        raise ValueError(f"bad fault spec {text!r}: trailing fields {rest[1:]}")
    seeds: frozenset[int] = frozenset()
    if rest and rest[0]:
        try:
            seeds = frozenset(int(s) for s in rest[0].split(","))
        except ValueError:
            raise ValueError(
                f"bad fault spec {text!r}: seeds must be integers"
            ) from None
    return Fault(site=site, kind=kind, seeds=seeds)


# -- installed plan + current seed (per-process globals) -------------------

_PLAN: FaultPlan | None = None
_SEED: int | None = None


def install_plan(plan: FaultPlan | None) -> None:
    global _PLAN
    _PLAN = plan


def clear_plan() -> None:
    install_plan(None)


def current_plan() -> FaultPlan | None:
    return _PLAN


#: alias used by the pool initializer for readability
installed_plan = current_plan


def set_current_seed(seed: int | None) -> None:
    """Record which campaign seed is being analyzed (targets faults)."""
    global _SEED
    _SEED = seed


def current_seed() -> int | None:
    return _SEED


def trigger(site: str) -> None:
    """Fault-injection hook: no-op unless an installed plan targets
    ``site`` at the current seed."""
    if _PLAN is None:
        return
    fault = _PLAN.fault_at(site, _SEED)
    if fault is None:
        return
    if fault.kind == "raise":
        raise InjectedFault(f"injected fault at {site} (seed {_SEED})")
    if fault.kind == "skip":
        from ..interp import StepLimitExceeded  # lazy: keep chaos light

        raise StepLimitExceeded(
            f"injected step-limit skip at {site} (seed {_SEED})"
        )
    if fault.kind == "kill":  # pragma: no cover - exercised via subprocess
        os._exit(86)
    _spin(fault)


def _spin(fault: Fault) -> None:
    """Busy-wait like a runaway seed: the armed budget converts the
    spin into ``SeedBudgetExceeded``; without one, give up after
    ``spin_seconds`` so unbudgeted tests never hang."""
    give_up = None if deadline_armed() else time.monotonic() + fault.spin_seconds
    while True:
        check_deadline()
        if give_up is not None and time.monotonic() > give_up:
            return
        time.sleep(0.001)


def chaos_pass(module, config) -> bool:
    """The registered ``chaos`` pass: a no-op unless a plan targets the
    ``chaos`` site, in which case it misbehaves like a buggy pass.

    Never part of any family pipeline; tests build explicit configs
    around it to drive crashes through the pass-pipeline containment.
    """
    trigger("chaos")
    return False
