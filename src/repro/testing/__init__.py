"""Test-only harnesses: deterministic fault injection (chaos)."""

from .chaos import (
    Fault,
    FaultPlan,
    InjectedFault,
    chaos_pass,
    clear_plan,
    current_plan,
    current_seed,
    install_plan,
    installed_plan,
    parse_fault,
    set_current_seed,
    trigger,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "chaos_pass",
    "clear_plan",
    "current_plan",
    "current_seed",
    "install_plan",
    "installed_plan",
    "parse_fault",
    "set_current_seed",
    "trigger",
]
