"""MiniC recursive-descent parser.

Parses the MiniC subset of C into ``repro.lang.ast_nodes`` trees.  The
grammar is a strict subset of C, so every paper listing (translated to
avoid ``printf`` varargs) parses unchanged.

The parser performs *no* type checking; run
``repro.frontend.typecheck.check_program`` on the result.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .lexer import Token, parse_int_literal, tokenize
from .types import (
    ArrayType,
    IntType,
    PointerType,
    Type,
    VoidType,
    int_type_by_name,
)


class ParseError(ValueError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


# Binary operator precedence, loosest first (C precedence order).
_PRECEDENCE: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


def parse_program(source: str) -> ast.Program:
    """Parse MiniC source text into a Program AST."""
    return _Parser(tokenize(source)).program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (handy in tests and the reducer)."""
    parser = _Parser(tokenize(source))
    expr = parser._expr()
    parser._expect_kind("eof")
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tok
        self._pos += 1
        return tok

    def _check(self, text: str) -> bool:
        return self._tok.text == text and self._tok.kind in ("op", "keyword")

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(f"expected {text!r}", self._tok)
        return self._advance()

    def _expect_kind(self, kind: str) -> Token:
        if self._tok.kind != kind:
            raise ParseError(f"expected {kind}", self._tok)
        return self._advance()

    # -- declarations -----------------------------------------------------

    def program(self) -> ast.Program:
        decls: list[ast.Decl] = []
        while self._tok.kind != "eof":
            decls.append(self._top_level())
        return ast.Program(decls)

    def _top_level(self) -> ast.Decl:
        is_extern = self._accept("extern")
        is_static = self._accept("static")
        base = self._type_specifier()
        is_ptr = self._accept("*")
        name = self._expect_kind("ident").text
        if self._check("("):
            return self._function(base, is_ptr, name, is_static, is_extern)
        return self._global_var(base, is_ptr, name, is_static)

    def _type_specifier(self) -> Type:
        self._accept("const")
        unsigned = False
        signed = False
        if self._accept("unsigned"):
            unsigned = True
        elif self._accept("signed"):
            signed = True
        tok = self._tok
        if tok.kind == "keyword" and tok.text in ("void", "char", "short", "int", "long"):
            self._advance()
            name = tok.text
            # 'long long' and 'long int' style multi-word types.
            if name == "long":
                self._accept("long")
                self._accept("int")
            elif name == "short":
                self._accept("int")
        elif unsigned or signed:
            name = "int"
        else:
            raise ParseError("expected type specifier", tok)
        if name == "void":
            if unsigned:
                raise ParseError("'unsigned void' is invalid", tok)
            return VoidType()
        ty = int_type_by_name(name)
        assert isinstance(ty, IntType)
        if unsigned:
            ty = IntType(ty.width, False)
        return ty

    def _declared_type(self, base: Type, is_ptr: bool) -> Type:
        if is_ptr:
            if not isinstance(base, IntType):
                raise ParseError("pointer to non-integer type", self._tok)
            return PointerType(base)
        return base

    def _global_var(self, base: Type, is_ptr: bool, name: str, static: bool) -> ast.GlobalVar:
        ty = self._declared_type(base, is_ptr)
        if self._accept("["):
            length = parse_int_literal(self._expect_kind("number").text)
            self._expect("]")
            if not isinstance(ty, IntType):
                raise ParseError("array of non-integer type", self._tok)
            ty = ArrayType(ty, length)
        init: object = None
        if self._accept("="):
            init = self._global_initializer(ty)
        self._expect(";")
        return ast.GlobalVar(name, ty, init, static)

    def _global_initializer(self, ty: Type) -> object:
        if isinstance(ty, ArrayType):
            self._expect("{")
            values: list[int] = []
            if not self._check("}"):
                values.append(self._const_int())
                while self._accept(","):
                    if self._check("}"):
                        break
                    values.append(self._const_int())
            self._expect("}")
            # C zero-fills missing trailing elements.
            values.extend([0] * (ty.length - len(values)))
            return values[: ty.length]
        if isinstance(ty, PointerType):
            if self._tok.kind == "number" and parse_int_literal(self._tok.text) == 0:
                self._advance()
                return None
            return self._expr()  # &x or &x[i]
        return self._const_int()

    def _const_int(self) -> int:
        negative = self._accept("-")
        value = parse_int_literal(self._expect_kind("number").text)
        return -value if negative else value

    def _function(self, base: Type, is_ptr: bool, name: str, static: bool, is_extern: bool) -> ast.Decl:
        return_ty = self._declared_type(base, is_ptr)
        self._expect("(")
        params: list[ast.Param] = []
        if not self._check(")"):
            if self._check("void") and self._tokens[self._pos + 1].text == ")":
                self._advance()
            else:
                params.append(self._param())
                while self._accept(","):
                    params.append(self._param())
        self._expect(")")
        if self._accept(";"):
            return ast.FuncDecl(name, return_ty, params)
        if is_extern:
            raise ParseError("extern function with a body", self._tok)
        body = self._block()
        return ast.FuncDef(name, return_ty, params, body, static)

    def _param(self) -> ast.Param:
        base = self._type_specifier()
        is_ptr = self._accept("*")
        pname = self._expect_kind("ident").text
        return ast.Param(pname, self._declared_type(base, is_ptr))

    # -- statements ---------------------------------------------------------

    def _block(self) -> ast.Block:
        self._expect("{")
        stmts: list[ast.Stmt] = []
        while not self._check("}"):
            stmts.append(self._statement())
        self._expect("}")
        return ast.Block(stmts)

    def _stmt_as_block(self) -> ast.Block:
        """A statement in a context that MiniC models as a block
        (if/loop bodies), wrapping single statements."""
        if self._check("{"):
            return self._block()
        if self._accept(";"):
            return ast.Block([])
        return ast.Block([self._statement()])

    def _statement(self) -> ast.Stmt:
        tok = self._tok
        if self._check("{"):
            return self._block()
        if self._accept(";"):
            return ast.Block([])
        if tok.kind == "keyword":
            if tok.text in ("void", "char", "short", "int", "long", "unsigned", "signed", "const", "static"):
                return self._local_decl()
            if self._accept("if"):
                return self._if_stmt()
            if self._accept("while"):
                self._expect("(")
                cond = self._expr()
                self._expect(")")
                return ast.While(cond, self._stmt_as_block())
            if self._accept("do"):
                body = self._stmt_as_block()
                self._expect("while")
                self._expect("(")
                cond = self._expr()
                self._expect(")")
                self._expect(";")
                return ast.DoWhile(body, cond)
            if self._accept("for"):
                return self._for_stmt()
            if self._accept("switch"):
                return self._switch_stmt()
            if self._accept("return"):
                if self._accept(";"):
                    return ast.Return(None)
                value = self._expr()
                self._expect(";")
                return ast.Return(value)
            if self._accept("break"):
                self._expect(";")
                return ast.Break()
            if self._accept("continue"):
                self._expect(";")
                return ast.Continue()
            raise ParseError("unexpected keyword", tok)
        return self._expr_or_assign_stmt()

    def _local_decl(self) -> ast.Stmt:
        self._accept("static")  # function-local statics are file-scope in
        # MiniC's model; the checker rejects them, but parse them anyway.
        base = self._type_specifier()
        decls: list[ast.Stmt] = []
        while True:
            is_ptr = self._accept("*")
            name = self._expect_kind("ident").text
            ty = self._declared_type(base, is_ptr)
            if self._accept("["):
                length = parse_int_literal(self._expect_kind("number").text)
                self._expect("]")
                assert isinstance(ty, IntType)
                ty = ArrayType(ty, length)
            init: ast.Expr | list[ast.Expr] | None = None
            if self._accept("="):
                if isinstance(ty, ArrayType):
                    self._expect("{")
                    elems: list[ast.Expr] = []
                    if not self._check("}"):
                        elems.append(self._expr())
                        while self._accept(","):
                            if self._check("}"):
                                break
                            elems.append(self._expr())
                    self._expect("}")
                    init = elems
                else:
                    init = self._expr()
            decls.append(ast.VarDecl(name, ty, init))
            if not self._accept(","):
                break
        self._expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls)

    def _if_stmt(self) -> ast.If:
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then = self._stmt_as_block()
        els: ast.Block | None = None
        if self._accept("else"):
            if self._accept("if"):
                els = ast.Block([self._if_stmt()])
            else:
                els = self._stmt_as_block()
        return ast.If(cond, then, els)

    def _for_stmt(self) -> ast.For:
        self._expect("(")
        init: ast.Stmt | None = None
        if not self._check(";"):
            if self._tok.kind == "keyword" and self._tok.text in (
                "char", "short", "int", "long", "unsigned", "signed", "const",
            ):
                init = self._local_decl()
            else:
                init = self._simple_assign_or_expr()
                self._expect(";")
        else:
            self._expect(";")
        cond: ast.Expr | None = None
        if not self._check(";"):
            cond = self._expr()
        self._expect(";")
        step: ast.Stmt | None = None
        if not self._check(")"):
            step = self._simple_assign_or_expr()
        self._expect(")")
        return ast.For(init, cond, step, self._stmt_as_block())

    def _switch_stmt(self) -> ast.Switch:
        self._expect("(")
        scrutinee = self._expr()
        self._expect(")")
        self._expect("{")
        cases: list[ast.SwitchCase] = []
        while not self._check("}"):
            if self._accept("case"):
                value: int | None = self._const_int()
            else:
                self._expect("default")
                value = None
            self._expect(":")
            stmts: list[ast.Stmt] = []
            while not (self._check("case") or self._check("default") or self._check("}")):
                stmt = self._statement()
                if isinstance(stmt, ast.Break):
                    break
                stmts.append(stmt)
            if len(stmts) == 1 and isinstance(stmts[0], ast.Block):
                body = stmts[0]  # avoid re-nesting on round trips
            else:
                body = ast.Block(stmts)
            cases.append(ast.SwitchCase(value, body))
        self._expect("}")
        return ast.Switch(scrutinee, cases)

    def _expr_or_assign_stmt(self) -> ast.Stmt:
        stmt = self._simple_assign_or_expr()
        self._expect(";")
        return stmt

    def _simple_assign_or_expr(self) -> ast.Stmt:
        expr = self._expr()
        tok = self._tok
        if self._accept("="):
            if not ast.is_lvalue(expr):
                raise ParseError("assignment to non-lvalue", tok)
            return ast.Assign(expr, self._expr(), "")
        for op in _COMPOUND_ASSIGN:
            if self._accept(op):
                if not ast.is_lvalue(expr):
                    raise ParseError("assignment to non-lvalue", tok)
                return ast.Assign(expr, self._expr(), op[:-1])
        if self._accept("++"):
            return ast.Assign(expr, ast.IntLit(1), "+")
        if self._accept("--"):
            return ast.Assign(expr, ast.IntLit(1), "-")
        return ast.ExprStmt(expr)

    # -- expressions ----------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._binary(0)
        if self._accept("?"):
            # Lower a ? b : c into short-circuit form understood by
            # the rest of the system: (a && b') || (!a && c') is wrong
            # for general values, so MiniC keeps an explicit node-free
            # desugaring: cond ? x : y  ==>  handled via If at the
            # statement level.  At expression level we only support
            # the select pattern when both arms are expressions:
            then = self._expr()
            self._expect(":")
            els = self._ternary()
            return _desugar_ternary(cond, then, els)
        return cond

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        ops = _PRECEDENCE[level]
        lhs = self._binary(level + 1)
        while self._tok.kind == "op" and self._tok.text in ops:
            op = self._advance().text
            rhs = self._binary(level + 1)
            lhs = ast.Binary(op, lhs, rhs)
        return lhs

    def _unary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "op":
            if self._accept("-"):
                return ast.Unary("-", self._unary())
            if self._accept("~"):
                return ast.Unary("~", self._unary())
            if self._accept("!"):
                return ast.Unary("!", self._unary())
            if self._accept("+"):
                return self._unary()
            if self._accept("*"):
                return ast.Deref(self._unary())
            if self._accept("&"):
                operand = self._unary()
                if not isinstance(operand, (ast.VarRef, ast.Index)):
                    raise ParseError("'&' requires a variable or element", tok)
                return ast.AddrOf(operand)
            if self._check("("):
                # Either a cast or a parenthesized expression.
                nxt = self._tokens[self._pos + 1]
                if nxt.kind == "keyword" and nxt.text in (
                    "char", "short", "int", "long", "unsigned", "signed", "const",
                ):
                    self._advance()
                    target = self._type_specifier()
                    self._expect(")")
                    if not isinstance(target, IntType):
                        raise ParseError("cast to non-integer type", tok)
                    return ast.Cast(target, self._unary())
                self._advance()
                inner = self._expr()
                self._expect(")")
                return self._postfix(inner)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "number":
            self._advance()
            return self._postfix(ast.IntLit(parse_int_literal(tok.text)))
        if tok.kind == "ident":
            self._advance()
            if self._check("("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(")"):
                    args.append(self._expr())
                    while self._accept(","):
                        args.append(self._expr())
                self._expect(")")
                return self._postfix(ast.Call(tok.text, args))
            return self._postfix(ast.VarRef(tok.text))
        raise ParseError("expected expression", tok)

    def _postfix(self, expr: ast.Expr) -> ast.Expr:
        while self._accept("["):
            index = self._expr()
            self._expect("]")
            expr = ast.Index(expr, index)
        return expr


def _desugar_ternary(cond: ast.Expr, then: ast.Expr, els: ast.Expr) -> ast.Expr:
    """Desugar ``cond ? then : els``.

    MiniC has no select expression, so we use the arithmetic identity
    ``mask = -(cond != 0); (then & mask) | (els & ~mask)`` which is
    total and branch-free, preserving both values' bit patterns in the
    common type.  Short-circuit evaluation is *not* preserved, but
    MiniC expressions are side-effect-free apart from calls, and the
    checker rejects calls inside ternaries, so this is sound.
    """
    nz = ast.Binary("!=", cond, ast.IntLit(0))
    mask = ast.Unary("-", nz)
    return ast.Binary(
        "|",
        ast.Binary("&", then, mask),
        ast.Binary("&", els, ast.Unary("~", mask)),
    )
