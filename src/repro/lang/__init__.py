"""MiniC: the deterministic, UB-free C subset used by this reproduction.

Public surface:

* :mod:`repro.lang.types` — the type system.
* :mod:`repro.lang.semantics` — the single source of truth for what
  every operator computes.
* :mod:`repro.lang.ast_nodes` — the AST.
* :func:`repro.lang.parse_program` / :func:`repro.lang.print_program`
  — source text round-trip.
"""

from .lexer import LexError, tokenize
from .parser import ParseError, parse_expression, parse_program
from .printer import print_expr, print_program, print_stmt

__all__ = [
    "LexError",
    "ParseError",
    "parse_expression",
    "parse_program",
    "print_expr",
    "print_program",
    "print_stmt",
    "tokenize",
]
