"""MiniC type system.

MiniC is a deterministic, UB-free subset of C used throughout this
reproduction.  Its types are fixed-width integers (signed and
unsigned), pointers to integers, and one-dimensional arrays of
integers.  Functions return an integer type or ``void``.

Widths follow the LP64 model the paper's experiments ran on:
``char``=8, ``short``=16, ``int``=32, ``long``=64 bits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for all MiniC types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """A fixed-width integer type.

    ``width`` is the size in bits (8, 16, 32 or 64) and ``signed``
    selects two's-complement signed or unsigned interpretation.
    """

    width: int
    signed: bool

    def __post_init__(self) -> None:
        if self.width not in (8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.width}")

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    @property
    def c_name(self) -> str:
        base = {8: "char", 16: "short", 32: "int", 64: "long"}[self.width]
        return base if self.signed else f"unsigned {base}"

    def __str__(self) -> str:
        return self.c_name


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to an integer type (MiniC has no pointer-to-pointer)."""

    pointee: IntType

    def __str__(self) -> str:
        return f"{self.pointee} *"


@dataclass(frozen=True)
class ArrayType(Type):
    """One-dimensional array of a fixed integer element type."""

    element: IntType
    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("array length must be positive")

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


# Canonical singletons used pervasively.
VOID = VoidType()
CHAR = IntType(8, True)
UCHAR = IntType(8, False)
SHORT = IntType(16, True)
USHORT = IntType(16, False)
INT = IntType(32, True)
UINT = IntType(32, False)
LONG = IntType(64, True)
ULONG = IntType(64, False)

ALL_INT_TYPES = (CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG)

_BY_NAME = {t.c_name: t for t in ALL_INT_TYPES}
_BY_NAME["void"] = VOID


def int_type_by_name(name: str) -> Type:
    """Look up an integer (or void) type by its C spelling."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown type name: {name!r}") from None


def promote(ty: IntType) -> IntType:
    """C integer promotion: types narrower than ``int`` become ``int``."""
    if ty.width < 32:
        return INT
    return ty


def usual_arithmetic_conversion(lhs: IntType, rhs: IntType) -> IntType:
    """The common type of a binary arithmetic expression.

    Mirrors C's usual arithmetic conversions for our LP64-style types:
    promote both operands, then pick the larger rank; on equal rank
    with mixed signedness the unsigned type wins.
    """
    lhs = promote(lhs)
    rhs = promote(rhs)
    if lhs == rhs:
        return lhs
    if lhs.width != rhs.width:
        wide, narrow = (lhs, rhs) if lhs.width > rhs.width else (rhs, lhs)
        if wide.signed and not narrow.signed and narrow.width < wide.width:
            # unsigned of smaller rank converts to the larger signed type
            return wide
        if not wide.signed:
            return wide
        return wide
    # Same width, different signedness: unsigned wins.
    return IntType(lhs.width, False)
