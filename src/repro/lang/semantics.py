"""MiniC evaluation semantics.

This module is the *single source of truth* for what every MiniC
operator computes.  The reference interpreter, the compiler's constant
folder, SCCP, instcombine, and the IR interpreter all call into these
functions, which guarantees that constant folding is always
semantics-preserving (a property the test suite checks end-to-end).

MiniC is deliberately UB-free: every operation is total.

* Arithmetic wraps around at the result type's width (two's
  complement for signed types).
* ``x / 0 == x`` and ``x % 0 == x`` (Csmith's "safe math" convention).
* ``INT_MIN / -1 == INT_MIN`` (wraps, no trap).
* Shift counts are masked by ``width - 1``; right shift of signed
  values is arithmetic.
* Comparisons and logical operators yield ``0`` or ``1`` as ``int``.
"""

from __future__ import annotations

from .types import IntType

# Binary operators grouped by category.  These spellings are shared by
# the AST, the IR, and the printers.
ARITH_OPS = ("+", "-", "*", "/", "%")
BIT_OPS = ("&", "|", "^", "<<", ">>")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("&&", "||")
ALL_BINARY_OPS = ARITH_OPS + BIT_OPS + CMP_OPS + LOGICAL_OPS

UNARY_OPS = ("-", "~", "!")


def wrap(value: int, ty: IntType) -> int:
    """Reduce ``value`` into the representable range of ``ty``.

    Implements two's-complement truncation: the result ``r`` satisfies
    ``r == value (mod 2**width)`` and ``ty.min_value <= r <= ty.max_value``.
    """
    mask = (1 << ty.width) - 1
    value &= mask
    if ty.signed and value > ty.max_value:
        value -= 1 << ty.width
    return value


def convert(value: int, src: IntType, dst: IntType) -> int:
    """Convert a value of type ``src`` to type ``dst`` (C-style)."""
    del src  # conversion depends only on the destination type
    return wrap(value, dst)


def _div(lhs: int, rhs: int) -> int:
    if rhs == 0:
        return lhs
    # C division truncates toward zero; Python's // floors.
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs < 0) == (rhs < 0) else -quotient


def _rem(lhs: int, rhs: int) -> int:
    if rhs == 0:
        return lhs
    return lhs - _div(lhs, rhs) * rhs


def eval_binop(op: str, lhs: int, rhs: int, ty: IntType) -> int:
    """Evaluate ``lhs op rhs`` where both operands already have the
    common type ``ty``; the result also has type ``ty`` (or ``int``
    for comparisons, whose 0/1 result fits any type).
    """
    if op == "+":
        return wrap(lhs + rhs, ty)
    if op == "-":
        return wrap(lhs - rhs, ty)
    if op == "*":
        return wrap(lhs * rhs, ty)
    if op == "/":
        return wrap(_div(lhs, rhs), ty)
    if op == "%":
        return wrap(_rem(lhs, rhs), ty)
    if op == "&":
        return wrap(lhs & rhs, ty)
    if op == "|":
        return wrap(lhs | rhs, ty)
    if op == "^":
        return wrap(lhs ^ rhs, ty)
    if op == "<<":
        return wrap(lhs << (rhs & (ty.width - 1)), ty)
    if op == ">>":
        # Arithmetic shift for signed (Python's >> on negative ints is
        # arithmetic), logical for unsigned (operand is non-negative).
        return wrap(lhs >> (rhs & (ty.width - 1)), ty)
    if op == "==":
        return 1 if lhs == rhs else 0
    if op == "!=":
        return 1 if lhs != rhs else 0
    if op == "<":
        return 1 if lhs < rhs else 0
    if op == "<=":
        return 1 if lhs <= rhs else 0
    if op == ">":
        return 1 if lhs > rhs else 0
    if op == ">=":
        return 1 if lhs >= rhs else 0
    raise ValueError(f"unknown binary operator: {op!r}")


def eval_unop(op: str, operand: int, ty: IntType) -> int:
    """Evaluate a unary operator on an operand of type ``ty``."""
    if op == "-":
        return wrap(-operand, ty)
    if op == "~":
        return wrap(~operand, ty)
    if op == "!":
        return 1 if operand == 0 else 0
    raise ValueError(f"unknown unary operator: {op!r}")


def is_commutative(op: str) -> bool:
    return op in ("+", "*", "&", "|", "^", "==", "!=")


def comparison_is_signless(op: str) -> bool:
    """Equality does not depend on the signedness interpretation."""
    return op in ("==", "!=")


#: C source for the safe-math helpers emitted by the pretty-printer so
#: that *printed* MiniC programs are UB-free C as well.  Division and
#: remainder are the only operators whose C behaviour differs from
#: MiniC semantics on edge cases (div by zero, INT_MIN/-1); shifts are
#: made safe by masking at the source level.
SAFE_MATH_C_HELPERS = """\
#define SAFE_DIV(T, a, b) ((T)(((b) == 0 || ((a) == (T)1 << (sizeof(T)*8-1) \
&& (b) == (T)-1)) ? (a) : (T)((a) / (b))))
#define SAFE_MOD(T, a, b) ((T)(((b) == 0 || ((a) == (T)1 << (sizeof(T)*8-1) \
&& (b) == (T)-1)) ? (a) : (T)((a) % (b))))
"""
