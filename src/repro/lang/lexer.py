"""MiniC lexer.

A small hand-rolled scanner producing a flat token list.  It accepts
the C spellings MiniC uses: identifiers, integer literals (decimal and
hex, with optional U/L suffixes), the operator/punctuation set, and
``//`` and ``/* */`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass


class LexError(ValueError):
    """Raised on malformed input; carries the 1-based source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "unsigned", "signed",
        "static", "extern", "if", "else", "while", "do", "for",
        "return", "break", "continue", "switch", "case", "default",
        "const",
    }
)

# Longest-match-first operator table.
OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ":", "?",
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'keyword' | 'op' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into tokens, ending with a single ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if source.startswith("#", i):
            # Preprocessor lines (e.g. '#include <stdio.h>') are
            # skipped so paper listings paste in unchanged.
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch.isdigit():
            j = i
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            # Swallow integer suffixes.
            while j < n and source[j] in "uUlL":
                j += 1
            tokens.append(Token("number", source[i:j], line))
            i = j
            continue
        if ch == "'":
            # Character literal -> its integer value.
            j = i + 1
            if j < n and source[j] == "\\":
                j += 1
            if j >= n or j + 1 >= n or source[j + 1] != "'":
                raise LexError("malformed character literal", line)
            value = _char_value(source[i + 1 : j + 1])
            tokens.append(Token("number", str(value), line))
            i = j + 2
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _char_value(text: str) -> int:
    if text.startswith("\\"):
        escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, "r": 13}
        try:
            return escapes[text[1]]
        except KeyError:
            raise LexError(f"unsupported escape {text!r}", 0) from None
    return ord(text)


def parse_int_literal(text: str) -> int:
    """Decode a lexed integer literal (suffixes already attached)."""
    stripped = text.rstrip("uUlL")
    return int(stripped, 0)
