"""MiniC abstract syntax tree.

Nodes are small mutable dataclasses (mutability is what makes the
reducer and instrumenter cheap to implement).  Every expression node
carries a ``ty`` attribute filled in by ``repro.frontend.typecheck``.

Value category notes:

* Lvalues are ``VarRef``, ``Index`` and ``Deref``.
* Assignment is statement-level (``Assign``); MiniC has no assignment
  expressions, comma operator, or ``++``/``--`` expressions, which
  keeps evaluation order trivially deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .types import ArrayType, IntType, PointerType, Type, VoidType


class Node:
    """Base class for all AST nodes."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int
    ty: IntType | None = None


@dataclass
class VarRef(Expr):
    name: str
    ty: Type | None = None


@dataclass
class Index(Expr):
    """``base[index]`` where ``base`` names an array or is a pointer."""

    base: Expr
    index: Expr
    ty: IntType | None = None


@dataclass
class Deref(Expr):
    """``*pointer``"""

    pointer: Expr
    ty: IntType | None = None


@dataclass
class AddrOf(Expr):
    """``&lvalue`` — the lvalue is a VarRef or Index."""

    lvalue: Expr
    ty: PointerType | None = None


@dataclass
class Unary(Expr):
    op: str  # one of semantics.UNARY_OPS
    operand: Expr
    ty: IntType | None = None


@dataclass
class Binary(Expr):
    op: str  # one of semantics.ALL_BINARY_OPS
    lhs: Expr
    rhs: Expr
    ty: IntType | None = None


@dataclass
class Cast(Expr):
    target: IntType
    operand: Expr
    ty: IntType | None = None


@dataclass
class Call(Expr):
    callee: str
    args: list[Expr] = field(default_factory=list)
    ty: Type | None = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """A local variable declaration with an optional initializer.

    ``init`` is a scalar expression, or a list of constant expressions
    for arrays, or ``None``.  Uninitialized locals are implicitly
    zero-initialized (MiniC has no indeterminate values).
    """

    name: str
    ty: Type
    init: Expr | list[Expr] | None = None


@dataclass
class Assign(Stmt):
    """``target op= value`` where ``op`` is '' for plain assignment."""

    target: Expr  # an lvalue
    value: Expr
    op: str = ""  # '', '+', '-', '*', '&', '|', '^', ...


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Block
    els: Block | None = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Block


@dataclass
class DoWhile(Stmt):
    body: Block
    cond: Expr


@dataclass
class For(Stmt):
    """``for (init; cond; step) body`` — init/step are statements."""

    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: Block


@dataclass
class Switch(Stmt):
    scrutinee: Expr
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class SwitchCase(Node):
    """One ``case N: ...`` arm (or ``default`` when ``value is None``).

    MiniC switch arms never fall through: the printer emits an explicit
    ``break`` at the end of each arm.
    """

    value: int | None
    body: Block = field(default_factory=Block)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------


@dataclass
class Decl(Node):
    pass


@dataclass
class GlobalVar(Decl):
    """A file-scope variable; ``static`` selects internal linkage.

    ``init`` is an int for scalars, a list of ints for arrays, or an
    ``AddrOf``/``VarRef`` constant expression for pointers.  A missing
    initializer means zero, as in C.
    """

    name: str
    ty: Type
    init: object = None
    static: bool = False


@dataclass
class Param(Node):
    name: str
    ty: Type


@dataclass
class FuncDecl(Decl):
    """A declaration without a body (``void DCECheck0(void);``).

    These are the paper's *optimization markers* and ``dead()``-style
    opaque callees: the compiler can never analyze their bodies.
    """

    name: str
    return_ty: Type = VoidType()
    params: list[Param] = field(default_factory=list)


@dataclass
class FuncDef(Decl):
    name: str
    return_ty: Type
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    static: bool = False


@dataclass
class Program(Node):
    decls: list[Decl] = field(default_factory=list)

    def functions(self) -> list[FuncDef]:
        return [d for d in self.decls if isinstance(d, FuncDef)]

    def globals(self) -> list[GlobalVar]:
        return [d for d in self.decls if isinstance(d, GlobalVar)]

    def extern_decls(self) -> list[FuncDecl]:
        return [d for d in self.decls if isinstance(d, FuncDecl)]

    def function(self, name: str) -> FuncDef:
        for d in self.decls:
            if isinstance(d, FuncDef) and d.name == name:
                return d
        raise KeyError(name)

    def global_var(self, name: str) -> GlobalVar:
        for d in self.decls:
            if isinstance(d, GlobalVar) and d.name == name:
                return d
        raise KeyError(name)


LVALUE_TYPES = (VarRef, Index, Deref)


def is_lvalue(expr: Expr) -> bool:
    """True when ``expr`` may appear on the left of an assignment or
    under ``&`` (modulo type checking)."""
    return isinstance(expr, LVALUE_TYPES)


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, preorder."""
    yield expr
    if isinstance(expr, (Unary, Cast)):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, Index):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, Deref):
        yield from walk_expr(expr.pointer)
    elif isinstance(expr, AddrOf):
        yield from walk_expr(expr.lvalue)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and every nested statement, preorder."""
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            yield from walk_stmts(s)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.els is not None:
            yield from walk_stmts(stmt.els)
    elif isinstance(stmt, (While, DoWhile)):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        if stmt.step is not None:
            yield from walk_stmts(stmt.step)
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            yield from walk_stmts(case.body)


def walk_exprs_of_stmt(stmt: Stmt):
    """Yield every expression directly attached to ``stmt`` (not
    descending into nested statements)."""
    if isinstance(stmt, VarDecl):
        if isinstance(stmt.init, Expr):
            yield from walk_expr(stmt.init)
        elif isinstance(stmt.init, list):
            for e in stmt.init:
                yield from walk_expr(e)
    elif isinstance(stmt, Assign):
        yield from walk_expr(stmt.target)
        yield from walk_expr(stmt.value)
    elif isinstance(stmt, ExprStmt):
        yield from walk_expr(stmt.expr)
    elif isinstance(stmt, If):
        yield from walk_expr(stmt.cond)
    elif isinstance(stmt, While):
        yield from walk_expr(stmt.cond)
    elif isinstance(stmt, DoWhile):
        yield from walk_expr(stmt.cond)
    elif isinstance(stmt, For):
        if stmt.cond is not None:
            yield from walk_expr(stmt.cond)
    elif isinstance(stmt, Switch):
        yield from walk_expr(stmt.scrutinee)
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield from walk_expr(stmt.value)


def walk_program_stmts(program: Program):
    """Yield every statement in every function of ``program``."""
    for func in program.functions():
        yield from walk_stmts(func.body)


# --------------------------------------------------------------------------
# Fast structural clone
# --------------------------------------------------------------------------

#: per-node-class field names, resolved once (dataclasses.fields is too
#: slow to call per node on reducer-scale clone volumes)
_CLONE_FIELDS: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _CLONE_FIELDS.get(cls)
    if names is None:
        names = _CLONE_FIELDS[cls] = tuple(f.name for f in fields(cls))
    return names


def clone_node(node):
    """Structurally clone an AST value.

    Every :class:`Node` and every list is rebuilt, so mutating any part
    of the clone can never reach the original; leaves that the AST
    treats as immutable (ints, strings, ``None`` and the frozen
    :mod:`repro.lang.types` instances) are shared.  This is the
    reducer's replacement for ``copy.deepcopy``, which burns most of
    its time on memo bookkeeping these trees never need.
    """
    if isinstance(node, Node):
        cls = node.__class__
        return cls(
            *[clone_node(getattr(node, name)) for name in _field_names(cls)]
        )
    if isinstance(node, list):
        return [clone_node(item) for item in node]
    return node


def clone_program(program: Program) -> Program:
    """A fully detached copy of ``program`` (see :func:`clone_node`)."""
    return clone_node(program)
