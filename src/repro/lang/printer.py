"""MiniC pretty-printer.

Prints a MiniC AST back to C source text.  Two modes:

* ``safe=False`` (default): plain C, readable, used for display,
  reduction output, and round-trip tests.  Because MiniC semantics are
  total, plain mode may exhibit UB when fed to a *real* C compiler on
  programs that divide by zero or overflow signed arithmetic.
* ``safe=True``: emits UB-free C by (a) routing ``/`` and ``%``
  through ``SAFE_DIV``/``SAFE_MOD`` macros, (b) masking shift counts,
  and (c) performing ``+``/``-``/``*`` in the unsigned counterpart
  type.  This is the mode the real-compiler driver uses, mirroring
  Csmith's safe-math headers.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .semantics import SAFE_MATH_C_HELPERS
from .types import ArrayType, IntType, PointerType, Type, VoidType

# Larger number = binds tighter.  Mirrors _PRECEDENCE in parser.py.
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11
_POSTFIX_PREC = 12


def print_program(program: ast.Program, safe: bool = False) -> str:
    """Render ``program`` as C source text."""
    printer = _Printer(safe)
    return printer.program(program)


def print_stmt(stmt: ast.Stmt) -> str:
    """Render a single statement (used by tests and diagnostics)."""
    printer = _Printer(safe=False)
    printer._stmt(stmt, 0)
    return "".join(printer._parts)


def print_expr(expr: ast.Expr, safe: bool = False) -> str:
    return _Printer(safe)._expr(expr, 0)


def type_prefix(ty: Type) -> str:
    """The declaration prefix for ``ty`` ('int', 'char *', ...)."""
    if isinstance(ty, VoidType):
        return "void"
    if isinstance(ty, IntType):
        return ty.c_name
    if isinstance(ty, PointerType):
        return f"{ty.pointee.c_name} *"
    if isinstance(ty, ArrayType):
        return ty.element.c_name
    raise TypeError(f"unprintable type: {ty!r}")


def declare(ty: Type, name: str) -> str:
    """A full declarator, e.g. ``int a``, ``char *p``, ``int a[4]``."""
    if isinstance(ty, ArrayType):
        return f"{ty.element.c_name} {name}[{ty.length}]"
    prefix = type_prefix(ty)
    sep = "" if prefix.endswith("*") else " "
    return f"{prefix}{sep}{name}"


class _Printer:
    def __init__(self, safe: bool) -> None:
        self.safe = safe
        self._parts: list[str] = []

    # -- top level -------------------------------------------------------

    def program(self, program: ast.Program) -> str:
        self._parts = []
        if self.safe:
            self._parts.append(SAFE_MATH_C_HELPERS)
            self._parts.append("\n")
        for decl in program.decls:
            self._decl(decl)
        return "".join(self._parts)

    def _decl(self, decl: ast.Decl) -> None:
        out = self._parts
        if isinstance(decl, ast.GlobalVar):
            prefix = "static " if decl.static else ""
            text = f"{prefix}{declare(decl.ty, decl.name)}"
            if decl.init is not None:
                text += f" = {self._global_init(decl)}"
            out.append(text + ";\n")
        elif isinstance(decl, ast.FuncDecl):
            params = self._params(decl.params)
            out.append(f"{type_prefix(decl.return_ty)} {decl.name}({params});\n")
        elif isinstance(decl, ast.FuncDef):
            prefix = "static " if decl.static else ""
            params = self._params(decl.params)
            out.append(f"{prefix}{type_prefix(decl.return_ty)} {decl.name}({params}) ")
            self._block(decl.body, 0)
            out.append("\n")
        else:
            raise TypeError(f"unprintable declaration: {decl!r}")

    def _params(self, params: list[ast.Param]) -> str:
        if not params:
            return "void"
        return ", ".join(declare(p.ty, p.name) for p in params)

    def _global_init(self, decl: ast.GlobalVar) -> str:
        init = decl.init
        if isinstance(init, list):
            return "{" + ", ".join(str(v) for v in init) + "}"
        if isinstance(init, ast.Expr):
            return self._expr(init, 0)
        return str(init)

    # -- statements --------------------------------------------------------

    def _indent(self, depth: int) -> None:
        self._parts.append("  " * depth)

    def _block(self, block: ast.Block, depth: int) -> None:
        self._parts.append("{\n")
        for stmt in block.stmts:
            self._stmt(stmt, depth + 1)
        self._indent(depth)
        self._parts.append("}")

    def _stmt(self, stmt: ast.Stmt, depth: int) -> None:
        out = self._parts
        self._indent(depth)
        if isinstance(stmt, ast.Block):
            self._block(stmt, depth)
            out.append("\n")
        elif isinstance(stmt, ast.VarDecl):
            text = declare(stmt.ty, stmt.name)
            if isinstance(stmt.init, list):
                elems = ", ".join(self._expr(e, 0) for e in stmt.init)
                text += " = {" + elems + "}"
            elif stmt.init is not None:
                text += f" = {self._expr(stmt.init, 0)}"
            out.append(text + ";\n")
        elif isinstance(stmt, ast.Assign):
            target = self._expr(stmt.target, 0)
            value = self._expr(stmt.value, 0)
            op = stmt.op + "="
            out.append(f"{target} {op} {value};\n")
        elif isinstance(stmt, ast.ExprStmt):
            out.append(self._expr(stmt.expr, 0) + ";\n")
        elif isinstance(stmt, ast.If):
            out.append(f"if ({self._expr(stmt.cond, 0)}) ")
            self._block(stmt.then, depth)
            if stmt.els is not None:
                out.append(" else ")
                self._block(stmt.els, depth)
            out.append("\n")
        elif isinstance(stmt, ast.While):
            out.append(f"while ({self._expr(stmt.cond, 0)}) ")
            self._block(stmt.body, depth)
            out.append("\n")
        elif isinstance(stmt, ast.DoWhile):
            out.append("do ")
            self._block(stmt.body, depth)
            out.append(f" while ({self._expr(stmt.cond, 0)});\n")
        elif isinstance(stmt, ast.For):
            init = self._inline_stmt(stmt.init)
            cond = self._expr(stmt.cond, 0) if stmt.cond is not None else ""
            step = self._inline_stmt(stmt.step)
            out.append(f"for ({init}; {cond}; {step}) ")
            self._block(stmt.body, depth)
            out.append("\n")
        elif isinstance(stmt, ast.Switch):
            out.append(f"switch ({self._expr(stmt.scrutinee, 0)}) {{\n")
            for case in stmt.cases:
                self._indent(depth + 1)
                if case.value is None:
                    out.append("default: ")
                else:
                    out.append(f"case {case.value}: ")
                self._block(case.body, depth + 1)
                out.append(" break;\n")
            self._indent(depth)
            out.append("}\n")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                out.append("return;\n")
            else:
                out.append(f"return {self._expr(stmt.value, 0)};\n")
        elif isinstance(stmt, ast.Break):
            out.append("break;\n")
        elif isinstance(stmt, ast.Continue):
            out.append("continue;\n")
        else:
            raise TypeError(f"unprintable statement: {stmt!r}")

    def _inline_stmt(self, stmt: ast.Stmt | None) -> str:
        """Print a for-loop init/step clause without the trailing ';'."""
        if stmt is None:
            return ""
        if isinstance(stmt, ast.Assign):
            target = self._expr(stmt.target, 0)
            return f"{target} {stmt.op}= {self._expr(stmt.value, 0)}"
        if isinstance(stmt, ast.VarDecl):
            text = declare(stmt.ty, stmt.name)
            if isinstance(stmt.init, ast.Expr):
                text += f" = {self._expr(stmt.init, 0)}"
            return text
        if isinstance(stmt, ast.ExprStmt):
            return self._expr(stmt.expr, 0)
        raise TypeError(f"cannot inline statement: {stmt!r}")

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.Expr, parent_prec: int) -> str:
        text, prec = self._expr_prec(expr)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, expr: ast.Expr) -> tuple[str, int]:
        if isinstance(expr, ast.IntLit):
            if expr.value < 0:
                return str(expr.value), _UNARY_PREC
            suffix = ""
            if expr.ty is not None and expr.ty.width == 64:
                suffix = "L" if expr.ty.signed else "UL"
            elif expr.ty is not None and not expr.ty.signed and expr.ty.width == 32:
                suffix = "U"
            return f"{expr.value}{suffix}", _POSTFIX_PREC
        if isinstance(expr, ast.VarRef):
            return expr.name, _POSTFIX_PREC
        if isinstance(expr, ast.Index):
            base = self._expr(expr.base, _POSTFIX_PREC)
            return f"{base}[{self._expr(expr.index, 0)}]", _POSTFIX_PREC
        if isinstance(expr, ast.Deref):
            return f"*{self._expr(expr.pointer, _UNARY_PREC)}", _UNARY_PREC
        if isinstance(expr, ast.AddrOf):
            return f"&{self._expr(expr.lvalue, _UNARY_PREC)}", _UNARY_PREC
        if isinstance(expr, ast.Unary):
            operand = self._expr(expr.operand, _UNARY_PREC)
            # '- -x' must not print as '--x' (the decrement token).
            sep = " " if operand.startswith(expr.op) else ""
            return f"{expr.op}{sep}{operand}", _UNARY_PREC
        if isinstance(expr, ast.Cast):
            operand = self._expr(expr.operand, _UNARY_PREC)
            return f"({expr.target.c_name}){operand}", _UNARY_PREC
        if isinstance(expr, ast.Call):
            args = ", ".join(self._expr(a, 0) for a in expr.args)
            return f"{expr.callee}({args})", _POSTFIX_PREC
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        raise TypeError(f"unprintable expression: {expr!r}")

    def _binary(self, expr: ast.Binary) -> tuple[str, int]:
        prec = _BINARY_PREC[expr.op]
        if self.safe and expr.op in ("/", "%") and expr.ty is not None:
            macro = "SAFE_DIV" if expr.op == "/" else "SAFE_MOD"
            ty = expr.ty.c_name
            lhs = self._expr(expr.lhs, 0)
            rhs = self._expr(expr.rhs, 0)
            return f"{macro}({ty}, {lhs}, {rhs})", _POSTFIX_PREC
        if self.safe and expr.op in ("<<", ">>") and expr.ty is not None:
            lhs = self._expr(expr.lhs, prec)
            rhs = self._expr(expr.rhs, 0)
            mask = expr.ty.width - 1
            shifted = f"({rhs}) & {mask}"
            if expr.op == "<<" and expr.ty.signed:
                # Shift in the unsigned type to avoid signed overflow.
                uns = IntType(expr.ty.width, False).c_name
                return (
                    f"({expr.ty.c_name})(({uns})({lhs}) << ({shifted}))",
                    _UNARY_PREC,
                )
            return f"{lhs} {expr.op} ({shifted})", prec
        if self.safe and expr.op in ("+", "-", "*") and expr.ty is not None and expr.ty.signed:
            uns = IntType(expr.ty.width, False).c_name
            lhs = self._expr(expr.lhs, 0)
            rhs = self._expr(expr.rhs, 0)
            return (
                f"({expr.ty.c_name})(({uns})({lhs}) {expr.op} ({uns})({rhs}))",
                _UNARY_PREC,
            )
        # Left-associative: the right child needs a higher threshold.
        lhs = self._expr(expr.lhs, prec)
        rhs = self._expr(expr.rhs, prec + 1)
        return f"{lhs} {expr.op} {rhs}", prec
