"""Incremental compilation engine: prefix-shared pipeline snapshots.

:func:`repro.core.differential.analyze_markers` compiles one lowered
module under ~9 distinct :class:`PipelineConfig`\\ s whose pass
sequences overlap heavily (both families build every level above O0
from the same vendor pipeline).  Running each config independently
re-executes the shared work from scratch; this engine executes every
distinct piece of pipeline work **once** and shares the results:

* **Prefix tree.**  Pass sequences are arranged in a tree whose edges
  are keyed on ``(pass name, knobs the pass reads)`` — the projection
  comes from :meth:`PipelineConfig.knobs_for`, so configs that differ
  only in knobs a *later* pass consults share the earlier nodes.  Each
  node stores the module state after running its edge's pass; walking
  a config's pass list down the tree reuses every warm node
  (``compile.prefix_hits``) and only executes the cold suffix.
* **Immutable snapshots.**  Node states are never mutated: executing a
  pass first snapshots the parent state with the fast structural
  :meth:`Module.clone` (``compile.snapshot`` span) and runs the pass on
  the copy, so any number of configs can later branch off any node
  (``compile.fork`` span when one does).
* **Convergence memo.**  Diverged branches usually re-converge — e.g.
  levels differ in ``inline_budget``, but on a small program the
  inliner makes the same decisions at every budget.  Executions are
  additionally memoized on ``(parent state fingerprint, pass, knobs)``
  using the canonical printing of the IR
  (:func:`repro.ir.printer.fingerprint_module`), so a pass never runs
  twice on structurally identical input (``compile.memo_hits``); the
  memoized node is linked into the tree at every position that reaches
  it, turning the tree into a DAG whose shared suffixes then also
  serve prefix hits.
* **Gate skips.**  A pass whose config gate is off (``dse=False``,
  ``vectorize=False``, …) returns unchanged without reading the
  module, so the engine aliases the parent state instead of executing
  it at all (``compile.gate_skips``).

Results are **identical** to independent :func:`run_pipeline` runs:
each compile returns the leaf's module state and the changed-pass list
accumulated along the path, and passes are deterministic functions of
module *structure* (they never consult block-label text or any other
state the canonical fingerprint abstracts away — pinned by the
equivalence property tests).

Returned leaf modules are shared, read-only: callers may print or emit
them but must not run further passes in place (clone first).  Saved
work is reported via the ``compile.pass_execs`` /
``compile.pass_execs_saved`` / ``compile.prefix_hits`` /
``compile.memo_hits`` / ``compile.gate_skips`` counters.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..ir.function import Module
from ..ir.printer import fingerprint_module
from ..observability.attribution import PASS_SPAN, PIPELINE_SPAN
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import current_tracer
from ..testing.chaos import trigger as _chaos_trigger
from .config import PASS_GATES, PipelineConfig
from .pipeline import (
    MARKER_PREFIX,
    execute_pass,
    module_markers,
    module_size,
    validate_passes,
)

SNAPSHOT_SPAN = "compile.snapshot"
FORK_SPAN = "compile.fork"


def config_fingerprint_of(config: PipelineConfig) -> str:
    """Stable identity of one pipeline config across processes.

    Every :class:`PipelineConfig` field is a JSON-serializable
    primitive (the pass tuple serializes as a list), so the sorted
    JSON dump is canonical.  This keys the persistent compile memo in
    :mod:`repro.store` — the L2 behind this engine's in-memory tree —
    together with :func:`~repro.ir.printer.fingerprint_module` of the
    lowered input.
    """
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]

PASS_EXECS = "compile.pass_execs"
PASS_EXECS_SAVED = "compile.pass_execs_saved"
PREFIX_HITS = "compile.prefix_hits"
MEMO_HITS = "compile.memo_hits"
GATE_SKIPS = "compile.gate_skips"

#: per-pass marker-attribution counter prefix: each unique pass
#: execution that eliminates markers bumps
#: ``attribution.marker_kills/<pass>`` by the number it killed (the
#: run ledger's pass-attribution rollup; shared/memoized executions
#: count once, mirroring the work actually performed)
MARKER_KILLS = "attribution.marker_kills"


@dataclass
class IncrementalCompilation:
    """One config's result off the shared tree.

    ``module`` is the engine-owned leaf state — read-only for callers
    (it may be shared with other leaves and with interior nodes).
    """

    config: PipelineConfig
    module: Module
    changed_passes: list[str] = field(default_factory=list)


class _Node:
    """One tree position: the module state after running the edge pass
    that leads here, plus that pass's changed flag."""

    __slots__ = ("state", "changed", "children", "fingerprint", "marker_count")

    def __init__(self, state: Module, changed: bool) -> None:
        self.state = state
        self.changed = changed
        self.children: dict[tuple, "_Node"] = {}
        self.fingerprint: str | None = None
        #: lazily computed alive-marker count (attribution rollup)
        self.marker_count: int | None = None


class IncrementalEngine:
    """Compiles many configs over one base module, sharing pass work.

    ``base_module`` (the freshly lowered, pre-optimization IR) is
    adopted as the tree root and must not be mutated by the caller
    afterwards.  ``memoize=False`` disables the convergence memo and
    leaves pure prefix sharing (the escape hatch benchmarks use to
    split the two effects apart).
    """

    def __init__(
        self,
        base_module: Module,
        *,
        metrics: MetricsRegistry | None = None,
        verify_each: bool = False,
        memoize: bool = True,
        marker_prefix: str = MARKER_PREFIX,
    ) -> None:
        self._root = _Node(base_module, changed=False)
        self._metrics = metrics
        self._verify_each = verify_each
        self._memoize = memoize
        self._memo: dict[tuple, _Node] = {}
        self._marker_prefix = marker_prefix
        #: lifetime pass executions / reuses (also mirrored to metrics)
        self.pass_execs = 0
        self.pass_execs_saved = 0

    def compile(self, config: PipelineConfig) -> IncrementalCompilation:
        """Run ``config.passes`` over the base module — equivalent to
        ``run_pipeline`` on a fresh copy, minus the shared work."""
        # chaos site for the campaign's degraded-retry drill: a fault
        # here disappears on the non-incremental fallback path
        _chaos_trigger("incremental")
        validate_passes(config.passes)
        tracer = current_tracer()
        if not tracer.enabled:
            return self._walk(config, None)
        with tracer.span(
            PIPELINE_SPAN,
            module=self._root.state.name,
            n_passes=len(config.passes),
            incremental=True,
        ) as span:
            span.set(
                "markers_before",
                len(module_markers(self._root.state, self._marker_prefix)),
            )
            result = self._walk(config, tracer)
            span.set(
                "markers_after",
                len(module_markers(result.module, self._marker_prefix)),
            )
            span.set("changed_passes", len(result.changed_passes))
        return result

    # -- internals ----------------------------------------------------

    def _walk(self, config: PipelineConfig, tracer) -> IncrementalCompilation:
        node = self._root
        changed: list[str] = []
        reused = 0
        forked = False
        for position, name in enumerate(config.passes):
            knobs = config.knobs_for(name)
            key = (name, knobs)
            child = node.children.get(key)
            if child is not None:
                self._saved(PREFIX_HITS)
                reused += 1
            elif self._gated_off(name, config):
                # A gated-off pass returns unchanged without touching
                # the module: alias the parent state instead of
                # executing (exactly what run_pipeline would compute).
                child = _Node(node.state, changed=False)
                child.fingerprint = node.fingerprint
                node.children[key] = child
                self._saved(GATE_SKIPS)
            else:
                if tracer is not None and reused and not forked:
                    with tracer.span(FORK_SPAN, depth=position) as span:
                        span.set("pass", name)
                    forked = True
                child = self._derive(node, name, knobs, config, position, tracer)
                node.children[key] = child
            if child.changed:
                changed.append(name)
            node = child
        return IncrementalCompilation(config, node.state, changed)

    @staticmethod
    def _gated_off(name: str, config: PipelineConfig) -> bool:
        gate = PASS_GATES.get(name)
        return gate is not None and not getattr(config, gate)

    def _derive(
        self,
        parent: _Node,
        name: str,
        knobs: tuple,
        config: PipelineConfig,
        position: int,
        tracer,
    ) -> _Node:
        memo_key = None
        if self._memoize:
            memo_key = (self._fingerprint(parent), name, knobs)
            hit = self._memo.get(memo_key)
            if hit is not None:
                self._saved(MEMO_HITS)
                return hit
        child = self._execute(parent, name, config, position, tracer)
        if memo_key is not None:
            self._memo[memo_key] = child
        return child

    def _execute(
        self,
        parent: _Node,
        name: str,
        config: PipelineConfig,
        position: int,
        tracer,
    ) -> _Node:
        parent_markers = (
            self._marker_count(parent) if self._metrics is not None else None
        )
        if tracer is None:
            module = parent.state.clone()
            changed = execute_pass(module, name, config, self._verify_each)
        else:
            with tracer.span(SNAPSHOT_SPAN):
                module = parent.state.clone()
            instrs_before, blocks_before = module_size(module)
            marker_set_before = module_markers(module, self._marker_prefix)
            with tracer.span(PASS_SPAN, index=position) as span:
                span.set("pass", name)
                changed = execute_pass(module, name, config, self._verify_each)
                instrs_after, blocks_after = module_size(module)
                span.update(
                    changed=changed,
                    instrs_before=instrs_before,
                    instrs_after=instrs_after,
                    blocks_before=blocks_before,
                    blocks_after=blocks_after,
                    markers_eliminated=sorted(
                        marker_set_before
                        - module_markers(module, self._marker_prefix)
                    ),
                )
        self.pass_execs += 1
        node = _Node(module, changed)
        if self._metrics is not None:
            self._metrics.counter(PASS_EXECS).inc()
            killed = parent_markers - self._marker_count(node)
            if killed > 0:
                self._metrics.counter(f"{MARKER_KILLS}/{name}").inc(killed)
        return node

    def _marker_count(self, node: _Node) -> int:
        if node.marker_count is None:
            node.marker_count = len(
                module_markers(node.state, self._marker_prefix)
            )
        return node.marker_count

    def _fingerprint(self, node: _Node) -> str:
        if node.fingerprint is None:
            node.fingerprint = fingerprint_module(node.state)
        return node.fingerprint

    def _saved(self, kind: str) -> None:
        self.pass_execs_saved += 1
        if self._metrics is not None:
            self._metrics.counter(kind).inc()
            self._metrics.counter(PASS_EXECS_SAVED).inc()
