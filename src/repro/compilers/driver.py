"""One-call compiler driver.

``compile_minic`` takes MiniC source (or a parsed program) and a
(family, level, version) triple and produces assembly, mirroring
``gcc -O2 file.c -S``.  Each compilation lowers the AST afresh, so a
single parsed program can be compiled many times under different
configurations (the differential-testing workhorse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backend.asm import alive_markers, emit_module
from ..frontend.lower import lower_program
from ..frontend.typecheck import SymbolInfo, check_program
from ..ir.function import Module
from ..lang import ast_nodes as ast
from ..lang.parser import parse_program
from ..observability.tracer import Tracer, current_tracer
from .config import PipelineConfig
from .pipeline import run_pipeline
from .vendors import FAMILIES, LEVELS
from .versions import config_at, latest


@dataclass(frozen=True)
class CompilerSpec:
    """A concrete compiler under test: family + level + version."""

    family: str
    level: str
    version: int | None = None  # None = tip of the history

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")
        if self.level not in LEVELS:
            raise ValueError(f"unknown level {self.level!r}")

    @property
    def resolved_version(self) -> int:
        return latest(self.family) if self.version is None else self.version

    def config(self) -> PipelineConfig:
        return config_at(self.family, self.level, self.version)

    def __str__(self) -> str:
        v = f"@{self.resolved_version}"
        return f"{self.family}-{self.level}{v}"


@dataclass
class CompilationResult:
    spec: CompilerSpec
    module: Module
    asm: str
    changed_passes: list[str] = field(default_factory=list)

    def alive_markers(self, prefix: str = "") -> frozenset[str]:
        return alive_markers(self.asm, prefix)


def compile_minic(
    program: ast.Program | str,
    spec: CompilerSpec,
    info: SymbolInfo | None = None,
    verify_each: bool = False,
    tracer: Tracer | None = None,
) -> CompilationResult:
    """Compile ``program`` (source text or AST) under ``spec``."""
    if tracer is None:
        tracer = current_tracer()
    if isinstance(program, str):
        program = parse_program(program)
        info = None
    if info is None:
        info = check_program(program)
    with tracer.span("compile", spec=str(spec)) as span:
        module = lower_program(program, info)
        config = spec.config()
        changed = run_pipeline(module, config, verify_each=verify_each, tracer=tracer)
        asm = emit_module(module)
        span.set("changed_passes", len(changed))
    return CompilationResult(spec, module, asm, changed)
