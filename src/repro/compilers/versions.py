"""Compiler version histories.

Each family carries an ordered list of :class:`Commit`\\ s, every one
tagged with the component and source files it touches (the currency of
the paper's Tables 3 & 4).  A *version* is an index into the history:
version ``k`` means "base configuration plus the first ``k`` commits".
``latest(family)`` is the tip.  Regressions are commits whose knob
changes make some marker at some level stop being eliminated — the
corpus campaign finds them and ``repro.core.bisect`` attributes them
back to these commits, exactly like ``git bisect`` over a real
compiler tree.

The history deliberately mixes improvement commits, regression
commits, behaviour-neutral refactors, and one fixed-then-restored
sequence, mirroring the dynamics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from .config import PipelineConfig
from .vendors import GCCLIKE, LEVELS, LLVMLIKE, O1, O2, O3, OS, base_config, finalize_config


@dataclass(frozen=True)
class Commit:
    sha: str
    subject: str
    component: str
    files: tuple[str, ...]
    #: (levels or None for every level, config field, new value)
    changes: tuple[tuple[tuple[str, ...] | None, str, object], ...] = ()

    @property
    def is_behavioural(self) -> bool:
        return bool(self.changes)

    def apply(self, configs: dict[str, PipelineConfig]) -> dict[str, PipelineConfig]:
        out = dict(configs)
        for levels, field, value in self.changes:
            for level in levels or LEVELS:
                if level == "O0":
                    continue  # -O0 is frontend-only; middle-end commits don't reach it
                out[level] = out[level].with_(**{field: value})
        return out


GCC_HISTORY: tuple[Commit, ...] = (
    Commit("92acae01", "doc: refresh optimization option docs",
           "C-family Frontend", ("gcc/doc/invoke.texi",)),
    Commit("92acae02", "tree-ssa-ccp: schedule a second late CCP round at -O3",
           "Constant Propagation", ("gcc/tree-ssa-ccp.c", "gcc/passes.def"),
           ((("O3",), "sccp_iterations", 2),)),
    Commit("92acae03", "tree-ssa-structalias: raise points-to scaling limit",
           "Alias Analysis", ("gcc/tree-ssa-structalias.c",),
           ((None, "alias_max_objects", 2048),)),
    Commit("92acae04", "match.pd: sink conversions through arithmetic",
           "Peephole Optimizations", ("gcc/match.pd",),
           ((None, "collapse_cast_chains", True),)),
    Commit("92acae05", "cfg: refactor dominance utilities",
           "Control Flow Graph Analysis", ("gcc/dominance.c", "gcc/cfganal.c")),
    Commit("92acae06", "ipa-inline: grow the -O2 inlining budget",
           "Interprocedural Analyses", ("gcc/ipa-inline.c",),
           ((("O2",), "inline_budget", 240),)),
    Commit("92acae07", "tree-vect-loop: enable vectorization at -O3 by default",
           "Loop Transformations", ("gcc/tree-vect-loop.c", "gcc/opts.c"),
           ((("O3",), "vectorize", True),)),
    Commit("92acae08", "value-numbering: forward loads across const calls",
           "Value Numbering", ("gcc/tree-ssa-sccvn.c", "gcc/tree-ssa-pre.c"),
           ((("O2", "O3"), "gvn_across_calls", True),)),
    Commit("92acae09", "copy-prop: tidy worklist handling",
           "Copy Propagation", ("gcc/tree-ssa-copy.c",)),
    Commit("92acae10", "vrp: replace range widening heuristic (ranger)",
           "Value Propagation", ("gcc/gimple-range.cc", "gcc/vr-values.c"),
           ((None, "vrp_widen_after", 4),)),
    Commit("92acae11", "backwards threader: thread across constant phi edges",
           "Jump Threading", ("gcc/tree-ssa-threadbackward.c",
                              "gcc/tree-ssa-threadupdate.c", "gcc/tree-ssa-threadedge.c"),
           ((("O2", "O3"), "jump_threading", True),)),
    Commit("92acae12", "inliner: temper -O3 code growth",
           "Inlining", ("gcc/ipa-inline.c", "gcc/ipa-inline-analysis.c"),
           ((("O3",), "inline_budget", 300),)),
    Commit("92acae13", "i386: tune issue rates for znver3",
           "Target Info", ("gcc/config/i386/x86-tune.def",)),
    Commit("92acae14", "cunroll: raise full-unroll size limits",
           "Loop Transformations", ("gcc/tree-ssa-loop-ivcanon.c",),
           ((("O2",), "unroll_max_body", 48), (("O3",), "unroll_max_body", 72))),
    Commit("92acae15", "passes: move late CCP out of the -O3-only group",
           "Pass Management", ("gcc/passes.def", "gcc/passes.c"),
           ((("O3",), "sccp_iterations", 1),)),
    Commit("92acae16", "sched-rgn: disable speculative store forwarding at -Os",
           "Common Subexpression Elimination", ("gcc/sched-rgn.c",),
           ((("Os",), "store_forwarding", False),)),
    Commit("92acae17", "c-family: diagnose shadowed file-scope statics",
           "C-family Frontend", ("gcc/c-family/c-warn.c", "gcc/c/c-decl.c",
                                 "gcc/c-family/c.opt", "gcc/c-family/c-opts.c")),
    Commit("92acae18", "alias: model one-past-the-end addresses conservatively at -Os",
           "Alias Analysis", ("gcc/tree-ssa-alias.c",),
           ((("Os",), "addr_cmp", "zero-index"),)),
    Commit("92acae19", "ipa-sra: split parameters more aggressively",
           "Interprocedural SRoA", ("gcc/ipa-sra.c",)),
    Commit("92acae20", "dse: track trivially dead frame stores",
           "Dead Store Elimination", ("gcc/tree-ssa-dse.c",)),
    Commit("92acae21", "ranger: cap cache growth at -O3",
           "Value Propagation", ("gcc/gimple-range-cache.cc",),
           ((("O3",), "vrp_widen_after", 3),)),
    Commit("92acae22", "cse: canonicalize commutative operands earlier",
           "Common Subexpression Elimination", ("gcc/cse.c",)),
    Commit("92acae23", "opts: -Os now enables the jump threader",
           "Jump Threading", ("gcc/opts.c",),
           ((("Os",), "jump_threading", True),)),
    Commit("92acae24", "range-op: fold shifts and remainders against range bounds",
           "Value Propagation", ("gcc/range-op.cc",),
           ((None, "vrp_extended_ops", True),)),
)


LLVM_HISTORY: tuple[Commit, ...] = (
    Commit("3cc38701", "AMDGPU: update scheduling model comments",
           "Target Info", ("llvm/lib/Target/AMDGPU/SISchedule.td",
                           "llvm/lib/Target/AMDGPU/GCNSubtarget.h")),
    Commit("3cc38702", "EarlyCSE: fold comparisons of distinct global addresses",
           "Peephole Optimizations", ("llvm/lib/Transforms/Scalar/EarlyCSE.cpp",),
           ((None, "addr_cmp", "zero-index"),)),
    Commit("3cc38703", "GlobalOpt: replace SSA-based global value analysis",
           "Value Propagation", ("llvm/lib/Transforms/IPO/GlobalOpt.cpp",),
           ((None, "global_fold_mode", "stored-init"),)),
    Commit("3cc38704", "InstCombine: collapse cast chains",
           "Peephole Optimizations", ("llvm/lib/Transforms/InstCombine/InstCombineCasts.cpp",),
           ((None, "collapse_cast_chains", True),)),
    Commit("3cc38705", "ValueTracking: refactor known-bits queries",
           "Value Tracking", ("llvm/lib/Analysis/ValueTracking.cpp",)),
    Commit("3cc38706", "LVI: raise constraint widening budget",
           "Value Constraint Analysis", ("llvm/lib/Analysis/LazyValueInfo.cpp",),
           ((None, "vrp_widen_after", 4),)),
    Commit("3cc38707", "JumpThreading: thread across constant phi edges",
           "Jump Threading", ("llvm/lib/Transforms/Scalar/JumpThreading.cpp",),
           ((("O2", "O3"), "jump_threading", True),)),
    Commit("3cc38708", "BasicAA: raise object scan limit",
           "Alias Analysis", ("llvm/lib/Analysis/BasicAliasAnalysis.cpp",),
           ((None, "alias_max_objects", 2048),)),
    Commit("3cc38709", "NewPM: fold the extra late simplification round",
           "Pass Management", ("llvm/lib/Passes/PassBuilderPipelines.cpp",),
           ((("O3",), "sccp_iterations", 1),)),
    Commit("3cc38710", "InstCombine: canonicalize icmp-of-icmp against zero",
           "Instruction Operand Folding", ("llvm/lib/Transforms/InstCombine/InstCombineCompares.cpp",),
           ((None, "fold_cmp_chains", True),)),
    Commit("3cc38711", "SimpleLoopUnswitch: enable nontrivial unswitching at -O3",
           "Loop Transformations", ("llvm/lib/Transforms/Scalar/SimpleLoopUnswitch.cpp",),
           ((("O3",), "unswitch", True),)),
    Commit("3cc38712", "MemDep: cap dependency scans across call sites at -O3",
           "SSA Memory Analysis", ("llvm/lib/Analysis/MemoryDependenceAnalysis.cpp",),
           ((("O3",), "gvn_across_calls", False),)),
    Commit("3cc38713", "PassBuilder: restore the late simplification round at -O3",
           "Pass Management", ("llvm/lib/Passes/PassBuilderPipelines.cpp",),
           ((("O3",), "sccp_iterations", 2),)),
    Commit("3cc38714", "InstSimplify: tidy select folding",
           "Instruction Operand Folding", ("llvm/lib/Analysis/InstructionSimplify.cpp",)),
    Commit("3cc38715", "MemorySSA: rewrite def-use walker",
           "SSA Memory Analysis", ("llvm/lib/Analysis/MemorySSA.cpp",)),
    Commit("3cc38716", "LoopUnroll: raise full-unroll trip threshold at -O2",
           "Loop Transformations", ("llvm/lib/Transforms/Scalar/LoopUnrollPass.cpp",),
           ((("O2",), "unroll_max_trip", 40),)),
    Commit("3cc38717", "Inliner: tighten size heuristics at -Os",
           "Pass Management", ("llvm/lib/Analysis/InlineCost.cpp",),
           ((("Os",), "inline_budget", 24),)),
    Commit("3cc38718", "CVP: refactor block scanning",
           "Value Propagation", ("llvm/lib/Transforms/Scalar/CorrelatedValuePropagation.cpp",)),
    Commit("3cc38719", "BasicAA: model one-past-the-end conservatively at -Os",
           "Alias Analysis", ("llvm/lib/Analysis/BasicAliasAnalysis.cpp",),
           ((("Os",), "addr_cmp", "off"),)),
    Commit("3cc38720", "AArch64: update cost tables",
           "Target Info", ("llvm/lib/Target/AArch64/AArch64TargetTransformInfo.cpp",)),
    Commit("3cc38721", "GVN: drop load forwarding across opaque calls at -Os",
           "SSA Memory Analysis", ("llvm/lib/Transforms/Scalar/GVN.cpp",),
           ((("Os",), "gvn_across_calls", False),)),
    # The paper's Listing 8b fix: [X,X+1) % [Y,Y+1) simplification was
    # an omission in ConstantRange, fixed with 611a02cce50.
    Commit("3cc38722", "ConstantRange: implement urem/shl range edge cases",
           "Value Constraint Analysis", ("llvm/lib/IR/ConstantRange.cpp",),
           ((None, "vrp_extended_ops", True),)),
)

_HISTORIES = {GCCLIKE: GCC_HISTORY, LLVMLIKE: LLVM_HISTORY}


def history(family: str) -> tuple[Commit, ...]:
    return _HISTORIES[family]


def latest(family: str) -> int:
    """The tip version index (number of commits applied)."""
    return len(_HISTORIES[family])


def config_at(family: str, level: str, version: int | None = None) -> PipelineConfig:
    """The finalized pipeline configuration of (family, level) at
    ``version`` (defaults to the tip).

    Pure in (family, level, version), so replaying the commit history
    is memoized; callers get a private shallow copy (every config
    field is immutable) and cannot poison the cache by mutating it.
    """
    commits = _HISTORIES[family]
    if version is None:
        version = len(commits)
    if not 0 <= version <= len(commits):
        raise ValueError(f"version {version} out of range for {family}")
    return replace(_config_at_cached(family, level, version))


@lru_cache(maxsize=None)
def _config_at_cached(family: str, level: str, version: int) -> PipelineConfig:
    commits = _HISTORIES[family]
    configs = {lvl: base_config(family, lvl) for lvl in LEVELS}
    for commit in commits[:version]:
        configs = commit.apply(configs)
    return finalize_config(configs[level])


def commit_at(family: str, version: int) -> Commit:
    """The commit that produced ``version`` (1-based: version k is
    commits[:k], so its newest commit is commits[k-1])."""
    return _HISTORIES[family][version - 1]
