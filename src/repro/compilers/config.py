"""Pipeline configuration: every knob the passes consult.

A :class:`PipelineConfig` is assembled per (family, version, level) by
:mod:`repro.compilers.vendors` and :mod:`repro.compilers.versions`.
Each knob models a documented difference between real GCC and LLVM or
a regression mechanism from the paper's evaluation:

* ``global_fold_mode`` — GCC folds loads only of *never-written*
  internal globals (its global value analysis is not flow-sensitive,
  paper §2/Listing 4a); LLVM also folds when every store writes the
  initializer value back (so ``a = 0`` with ``a`` initialized to 0
  still folds, but ``a = 1`` does not — Listing 6a).
* ``addr_cmp`` — GCC folds comparisons of addresses of distinct
  objects; LLVM's EarlyCSE only manages it when both subscripts are 0
  (Listing 3: ``&a == &b[1]`` is missed, ``&a == &b[0]`` folds).
* ``fold_uniform_const_arrays`` — folding ``b[i]`` when every cell of
  a read-only array holds the same constant; GCC misses this
  (Listing 9f, GCC bug #99419), LLVM folds it.
* ``vectorize_*`` — models GCC's O3 vectorizer rewriting index
  arithmetic through ``unsigned long``, which blocks constant folding
  (Listing 9e).
* ``unswitch_*`` — models LLVM's aggressive loop unswitching at O3
  whose code-size blow-up interferes with later phases (Listings 7/8a).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


@dataclass
class PipelineConfig:
    """Knobs consulted by the optimization passes.

    The defaults describe a generic mid-strength compiler; families
    and optimization levels override them.
    """

    # -- which passes run, in pipeline order ---------------------------
    passes: tuple[str, ...] = ()

    # -- SCCP / constant propagation ------------------------------------
    sccp_iterations: int = 2  # how many times SCCP+cleanup reruns

    # -- global value analysis ("globalopt") -----------------------------
    #: 'readonly'     — fold loads of internal globals that are never
    #:                  stored to (GCC-like).
    #: 'stored-init'  — additionally fold when every store writes the
    #:                  initial value back (LLVM-like).
    #: 'flow'         — flow-sensitive (the paper's "fix"; used by
    #:                  ablation benchmarks, no real family enables it).
    global_fold_mode: str = "readonly"
    #: fold loads from read-only arrays whose cells all hold the same
    #: constant (GCC misses this — bug #99419 / Listing 9f).
    fold_uniform_const_arrays: bool = False

    # -- pointer-comparison folding ----------------------------------------
    #: 'all'        — distinct objects compare unequal (GCC-like)
    #: 'zero-index' — only when both element indices are 0 (LLVM EarlyCSE)
    #: 'off'        — never fold
    addr_cmp: str = "all"

    # -- GVN / CSE ----------------------------------------------------------
    gvn_across_calls: bool = False  # may loads be forwarded across calls
    store_forwarding: bool = True

    # -- peephole groups ------------------------------------------------------
    #: collapse cast-of-cast chains (a real LLVM InstCombine feature
    #: whose absence/presence is a favourite source of missed folds)
    collapse_cast_chains: bool = True
    #: fold ``(x cmp c) == 0`` into the negated comparison
    fold_cmp_chains: bool = True
    #: apply algebraic identities (x*0, x^x, ...); off at -O0, where
    #: only literal constant folding happens (front-end behaviour)
    peephole_algebraic: bool = True

    # -- analysis precision limits ---------------------------------------------
    #: points-to gives up (treats everything as escaped) on modules
    #: with more objects than this — a classic compile-time/precision
    #: trade-off commits like to touch.
    alias_max_objects: int = 10_000
    #: VRP widening threshold (lower = less precise loop ranges)
    vrp_widen_after: int = 4
    #: range transfer functions for shift/modulo operands — the
    #: capability behind paper Listings 8b ("[X,X+1) % [Y,Y+1) could
    #: not be simplified", fixed 611a02cce50) and 9a ("could not
    #: deduce X << Y != 0 implies X != 0", fixed 5f9ccf17de7)
    vrp_extended_ops: bool = True

    # -- DSE ------------------------------------------------------------------
    dse: bool = True
    dse_dead_at_exit: bool = True  # remove final stores to statics in main

    # -- inlining ----------------------------------------------------------------
    inline_budget: int = 60  # max callee instruction count
    inline_single_call_bonus: int = 60  # extra budget for single-call-site statics

    # -- loops ------------------------------------------------------------------
    unroll_max_trip: int = 16
    unroll_max_body: int = 40  # instructions
    #: Loop "vectorization": rewrites small counted loops to use
    #: unsigned-long index arithmetic (modelled after GCC PR99776);
    #: vectorized loops are skipped by the unroller.
    vectorize: bool = False
    vectorize_min_trip: int = 4
    #: Aggressive loop unswitching: hoists invariant conditions by
    #: versioning loops.  Its size blow-up interacts with the unroll
    #: and inline cost models (modelled after LLVM PR49773).
    unswitch: bool = False
    unswitch_max_body: int = 60

    # -- value range propagation --------------------------------------------------
    vrp: bool = False

    # -- jump threading -------------------------------------------------------------
    jump_threading: bool = False

    def with_(self, **changes) -> "PipelineConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)

    def knobs_for(self, pass_name: str) -> tuple:
        """The knob values ``pass_name`` actually reads, as a hashable
        projection suitable for keying shared pipeline work.

        Two configs with equal ``knobs_for(p)`` behave identically when
        running pass ``p`` on the same module — the contract the
        incremental engine's prefix tree is built on (knob lists are
        pinned against the pass sources by tests).  A pass whose gate
        knob is off projects to a bare ``(False,)``: its sub-knobs are
        never consulted, so configs that differ only there still share.
        """
        gate = PASS_GATES.get(pass_name)
        if gate is not None and not getattr(self, gate):
            return (False,)
        return tuple(
            getattr(self, name) for name in PASS_KNOB_FIELDS[pass_name]
        )

    def describe_diff(self, other: "PipelineConfig") -> list[str]:
        """Human-readable field-by-field diff (for reports/bisection)."""
        out = []
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if a != b:
                out.append(f"{f.name}: {a!r} -> {b!r}")
        return out


#: Which :class:`PipelineConfig` fields each registered pass reads.
#: This table is the ground truth for :meth:`PipelineConfig.knobs_for`;
#: tests pin it against the actual ``config.<field>`` reads in each
#: pass source so a new knob cannot silently invalidate prefix sharing.
PASS_KNOB_FIELDS: dict[str, tuple[str, ...]] = {
    "simplify-cfg": (),
    "mem2reg": (),
    "adce": (),
    "cprop": (),
    "chaos": (),
    "sccp": ("addr_cmp",),
    "instcombine": (
        "addr_cmp",
        "collapse_cast_chains",
        "fold_cmp_chains",
        "peephole_algebraic",
    ),
    "gvn": ("alias_max_objects", "gvn_across_calls", "store_forwarding"),
    "memcp": ("alias_max_objects", "global_fold_mode"),
    "dse": ("alias_max_objects", "dse", "dse_dead_at_exit"),
    "inline": ("inline_budget", "inline_single_call_bonus"),
    "globalopt": (
        "alias_max_objects",
        "fold_uniform_const_arrays",
        "global_fold_mode",
    ),
    "unroll": ("unroll_max_trip", "unroll_max_body"),
    "unswitch": ("unswitch", "unswitch_max_body"),
    "vectorize": ("vectorize", "vectorize_min_trip"),
    "vrp": ("vrp", "vrp_extended_ops", "vrp_widen_after"),
    "jump-threading": ("jump_threading",),
    "licm": ("alias_max_objects",),
}

#: Passes guarded by a boolean gate knob: when the gate is False the
#: pass returns immediately without reading any other knob.
PASS_GATES: dict[str, str] = {
    "dse": "dse",
    "unswitch": "unswitch",
    "vectorize": "vectorize",
    "vrp": "vrp",
    "jump-threading": "jump_threading",
}


#: The canonical full pipeline order.  Levels/families choose subsets;
#: the strings name entries in repro.passes.registry.
FULL_PIPELINE = (
    "simplify-cfg",
    "mem2reg",
    "sccp",
    "instcombine",
    "inline",
    "mem2reg",
    "globalopt",
    "memcp",
    "sccp",
    "instcombine",
    "licm",
    "unswitch",
    "vectorize",
    "unroll",
    "simplify-cfg",
    "memcp",
    "gvn",
    "sccp",
    "instcombine",
    "memcp",
    "sccp",
    "globalopt",
    "memcp",
    "vrp",
    "cprop",
    "jump-threading",
    "dse",
    "sccp",
    "gvn",
    "instcombine",
    "adce",
    "simplify-cfg",
)
