"""Pipeline execution: run a configured pass sequence over a module."""

from __future__ import annotations

from ..ir.function import Module
from ..ir.verify import verify_module
from ..passes.registry import PASS_REGISTRY
from .config import PipelineConfig


class PassPipelineError(RuntimeError):
    """A pass crashed or produced IR that fails verification."""

    def __init__(self, pass_name: str, original: BaseException) -> None:
        super().__init__(f"pass {pass_name!r} failed: {original}")
        self.pass_name = pass_name
        self.original = original


def run_pipeline(
    module: Module, config: PipelineConfig, verify_each: bool = False
) -> list[str]:
    """Run ``config.passes`` over ``module`` in order.

    Returns the list of pass names that reported changes.  With
    ``verify_each`` the IR verifier runs after every pass (slow; used
    by the test suite to localize pass bugs).
    """
    changed_by: list[str] = []
    for name in config.passes:
        pass_fn = PASS_REGISTRY[name]
        try:
            if pass_fn(module, config):
                changed_by.append(name)
            if verify_each:
                verify_module(module)
        except Exception as err:  # pragma: no cover - surfaced to callers
            raise PassPipelineError(name, err) from err
    return changed_by
