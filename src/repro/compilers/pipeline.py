"""Pipeline execution: run a configured pass sequence over a module.

When the current tracer is enabled (or one is passed explicitly) the
pipeline emits one ``pipeline.run`` span wrapping one ``pipeline.pass``
span per configured pass, each carrying wall time, IR size before and
after (instructions/blocks), whether the pass reported changes, and the
optimization markers whose calls disappeared during the pass — the
per-pass attribution that powers ``dce-hunt profile`` and the
component tables (see :mod:`repro.observability.attribution`).  With
tracing disabled none of the bookkeeping runs.
"""

from __future__ import annotations

from ..budget import SeedBudgetExceeded, check_deadline
from ..ir import instructions as ins
from ..ir.function import Module
from ..ir.verify import VerificationError, verify_module
from ..observability.attribution import PASS_SPAN, PIPELINE_SPAN
from ..observability.tracer import Tracer, current_tracer
from ..passes.registry import PASS_REGISTRY, available_passes
from ..testing.chaos import trigger as _chaos_trigger
from .config import PipelineConfig

#: marker symbol prefix tracked for per-pass attribution (mirrors
#: :data:`repro.core.markers.MARKER_PREFIX`; kept literal to avoid a
#: compilers → core import cycle)
MARKER_PREFIX = "DCEMarker"


class PassPipelineError(RuntimeError):
    """A pass is unknown, crashed, or produced unverifiable IR."""

    def __init__(
        self,
        pass_name: str,
        original: BaseException | None = None,
        message: str | None = None,
    ) -> None:
        super().__init__(message or f"pass {pass_name!r} failed: {original}")
        self.pass_name = pass_name
        self.original = original


def validate_passes(pass_names: tuple[str, ...] | list[str]) -> None:
    """Raise :class:`PassPipelineError` if any name is not registered."""
    unknown = sorted({name for name in pass_names if name not in PASS_REGISTRY})
    if unknown:
        raise PassPipelineError(
            unknown[0],
            message=(
                f"unknown pass(es) {', '.join(repr(n) for n in unknown)}; "
                f"valid passes: {', '.join(available_passes())}"
            ),
        )


def module_size(module: Module) -> tuple[int, int]:
    """(instruction count, block count) over all functions."""
    n_instrs = 0
    n_blocks = 0
    for func in module.functions.values():
        n_blocks += len(func.blocks)
        for block in func.blocks:
            n_instrs += len(block.instrs)
    return n_instrs, n_blocks


def module_markers(module: Module, prefix: str = MARKER_PREFIX) -> frozenset[str]:
    """Marker symbols still called anywhere in the IR.

    Every ``Call`` lowers to a ``call`` line in the emitted assembly
    (including ones in unreachable-but-present blocks), so scanning the
    IR agrees with the backend's :func:`repro.backend.asm.alive_markers`
    oracle while being much cheaper than emitting text.
    """
    found: set[str] = set()
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, ins.Call) and instr.callee.startswith(prefix):
                found.add(instr.callee)
    return frozenset(found)


def execute_pass(
    module: Module,
    name: str,
    config: PipelineConfig,
    verify_each: bool = False,
) -> bool:
    """Run one (already validated) pass over ``module`` in place.

    Returns the pass's changed flag; wraps failures in
    :class:`PassPipelineError`.  Shared by :func:`run_pipeline` and the
    incremental engine so both execute passes identically.

    Every pass boundary polls the cooperative seed budget
    (:mod:`repro.budget`): a :class:`SeedBudgetExceeded` is a skip
    signal for the campaign layer, never wrapped as a pass crash.
    """
    check_deadline()
    pass_fn = PASS_REGISTRY[name]
    try:
        _chaos_trigger(f"pass:{name}")
        changed = pass_fn(module, config)
        if verify_each:
            verify_module(module)
    except SeedBudgetExceeded:
        raise
    except VerificationError as err:
        summary = str(err).splitlines()[0] if str(err) else "invalid IR"
        raise PassPipelineError(
            name, err,
            message=f"pass {name!r} produced unverifiable IR: {summary}",
        ) from err
    except Exception as err:
        raise PassPipelineError(name, err) from err
    return changed


def run_pipeline(
    module: Module,
    config: PipelineConfig,
    verify_each: bool = False,
    tracer: Tracer | None = None,
    marker_prefix: str = MARKER_PREFIX,
) -> list[str]:
    """Run ``config.passes`` over ``module`` in order.

    Returns the list of pass names that reported changes.  With
    ``verify_each`` the IR verifier runs after every pass (slow; used
    by the test suite to localize pass bugs).
    """
    validate_passes(config.passes)
    if tracer is None:
        tracer = current_tracer()
    if not tracer.enabled:
        return _run_untraced(module, config, verify_each)

    changed_by: list[str] = []
    with tracer.span(
        PIPELINE_SPAN, module=module.name, n_passes=len(config.passes)
    ) as pipeline_span:
        markers_before = module_markers(module, marker_prefix)
        pipeline_span.set("markers_before", len(markers_before))
        for index, name in enumerate(config.passes):
            instrs_before, blocks_before = module_size(module)
            with tracer.span(PASS_SPAN, index=index) as span:
                span.set("pass", name)
                changed = execute_pass(module, name, config, verify_each)
                if changed:
                    changed_by.append(name)
                instrs_after, blocks_after = module_size(module)
                markers_after = module_markers(module, marker_prefix)
                span.update(
                    changed=changed,
                    instrs_before=instrs_before,
                    instrs_after=instrs_after,
                    blocks_before=blocks_before,
                    blocks_after=blocks_after,
                    markers_eliminated=sorted(markers_before - markers_after),
                )
            markers_before = markers_after
        pipeline_span.set("markers_after", len(markers_before))
        pipeline_span.set("changed_passes", len(changed_by))
    return changed_by


def _run_untraced(
    module: Module, config: PipelineConfig, verify_each: bool
) -> list[str]:
    """The measurement-free hot path (pass names already validated)."""
    changed_by: list[str] = []
    for name in config.passes:
        if execute_pass(module, name, config, verify_each):
            changed_by.append(name)
    return changed_by
