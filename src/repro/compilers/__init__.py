"""Compiler families, versions, and the compilation driver."""

from .config import FULL_PIPELINE, PipelineConfig
from .driver import CompilationResult, CompilerSpec, compile_minic
from .incremental import IncrementalCompilation, IncrementalEngine
from .pipeline import PassPipelineError, run_pipeline
from .vendors import FAMILIES, GCCLIKE, LEVELS, LLVMLIKE, O0, O1, O2, O3, OS
from .versions import Commit, commit_at, config_at, history, latest

__all__ = [
    "Commit",
    "CompilationResult",
    "CompilerSpec",
    "FAMILIES",
    "FULL_PIPELINE",
    "GCCLIKE",
    "IncrementalCompilation",
    "IncrementalEngine",
    "LEVELS",
    "LLVMLIKE",
    "O0",
    "O1",
    "O2",
    "O3",
    "OS",
    "PassPipelineError",
    "PipelineConfig",
    "commit_at",
    "compile_minic",
    "config_at",
    "history",
    "latest",
    "run_pipeline",
]
