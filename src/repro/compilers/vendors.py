"""The two compiler families.

``gcclike`` and ``llvmlike`` share the pass implementations but differ
in pipelines, budgets, and analysis precision — each difference mirrors
one the paper documents (see ``repro.compilers.config`` and DESIGN.md
§2).  A family plus an optimization level plus a version index fully
determines a :class:`~repro.compilers.config.PipelineConfig`.
"""

from __future__ import annotations

from .config import PipelineConfig

GCCLIKE = "gcclike"
LLVMLIKE = "llvmlike"
FAMILIES = (GCCLIKE, LLVMLIKE)

O0, O1, OS, O2, O3 = "O0", "O1", "Os", "O2", "O3"
LEVELS = (O0, O1, OS, O2, O3)

_PIPE_O0 = ("instcombine", "simplify-cfg")

_PIPE_O1 = (
    "simplify-cfg",
    "mem2reg",
    "sccp",
    "instcombine",
    "inline",
    "mem2reg",
    "globalopt",
    "memcp",
    "sccp",
    "instcombine",
    "licm",
    "unroll",
    "simplify-cfg",
    "memcp",
    "gvn",
    "sccp",
    "instcombine",
    "memcp",
    "vrp",
    "cprop",
    "sccp",
    "dse",
    "adce",
    "simplify-cfg",
)

_PIPE_O2 = (
    "simplify-cfg",
    "mem2reg",
    "sccp",
    "instcombine",
    "inline",
    "mem2reg",
    "globalopt",
    "memcp",
    "sccp",
    "instcombine",
    "licm",
    "unswitch",
    "vectorize",
    "unroll",
    "simplify-cfg",
    "memcp",
    "gvn",
    "sccp",
    "instcombine",
    "memcp",
    "sccp",
    "globalopt",
    "memcp",
    "vrp",
    "cprop",
    "jump-threading",
    "dse",
    "sccp",
    "gvn",
    "instcombine",
    "adce",
    "simplify-cfg",
)


def _with_cleanup_rounds(passes: tuple[str, ...], rounds: int) -> tuple[str, ...]:
    """Append (rounds - 1) extra late-cleanup sequences; the paper-style
    'the new pass manager runs one cleanup round' regression toggles
    this via ``sccp_iterations``."""
    extra: tuple[str, ...] = ()
    for _ in range(max(0, rounds - 1)):
        extra += ("sccp", "instcombine", "adce", "simplify-cfg")
    return passes + extra


def base_config(family: str, level: str) -> PipelineConfig:
    """The *oldest* (pre-history) configuration of ``family`` at
    ``level``.  Commits from :mod:`repro.compilers.versions` evolve it
    into the current one."""
    if level == O0:
        # Only the front end's trivial constant folding (paper: even
        # -O0 eliminates ~15% of dead markers); no cleanup rounds and
        # no family-specific analyses.
        return PipelineConfig(
            passes=_PIPE_O0,
            sccp_iterations=1,
            addr_cmp="off",
            collapse_cast_chains=False,
            fold_cmp_chains=False,
            peephole_algebraic=False,
        )
    # Called-once static functions inline regardless of size from -O1
    # up (GCC's -finline-functions-called-once); the budget below is
    # for the general case.
    called_once = 1_000_000
    if level == O1:
        cfg = PipelineConfig(
            passes=_PIPE_O1,
            inline_budget=40,
            inline_single_call_bonus=called_once,
            unroll_max_trip=8,
            unroll_max_body=24,
            vrp=True,  # "early VRP" runs from -O1 in both real compilers
            jump_threading=False,
            gvn_across_calls=False,
            sccp_iterations=1,
        )
    elif level == OS:
        cfg = PipelineConfig(
            passes=_PIPE_O2,
            inline_budget=30,
            inline_single_call_bonus=called_once,
            unroll_max_trip=4,
            unroll_max_body=16,
            vrp=True,
            jump_threading=False,
            sccp_iterations=1,
        )
    elif level == O2:
        cfg = PipelineConfig(
            passes=_PIPE_O2,
            inline_budget=200,
            inline_single_call_bonus=called_once,
            unroll_max_trip=16,
            unroll_max_body=40,
            vrp=True,
            jump_threading=False,
            sccp_iterations=1,
        )
    else:  # O3
        cfg = PipelineConfig(
            passes=_PIPE_O2,
            inline_budget=400,
            inline_single_call_bonus=called_once,
            unroll_max_trip=24,
            unroll_max_body=64,
            vrp=True,
            jump_threading=False,
            sccp_iterations=1,  # a second round arrives by commit
        )

    if family == GCCLIKE:
        cfg = cfg.with_(
            addr_cmp="all",
            global_fold_mode="readonly",
            fold_uniform_const_arrays=False,  # GCC bug #99419, never fixed here
            collapse_cast_chains=False,  # enabled by commit 92acae04
            vectorize=False,  # -O3 default arrives with commit 92acae07
            alias_max_objects=48,  # raised by commit 92acae03
            vrp_widen_after=2,  # ranger rewrite (92acae10) raises it
            dse_dead_at_exit=False,  # GCC bug #99357: stays off
            gvn_across_calls=False,  # enabled at O2+ by 92acae08
            vrp_extended_ops=False,  # arrives with 92acae24 (Listing 9a)
        )
    elif family == LLVMLIKE:
        cfg = cfg.with_(
            addr_cmp="off",  # 'zero-index' arrives with 3cc38702
            # old LLVM (≤3.7) had the stronger SSA-based analysis; the
            # GlobalOpt rewrite (3cc38703) regresses it to 'stored-init'
            # — the paper's Listing 6a regression.
            global_fold_mode="flow",
            fold_uniform_const_arrays=True,
            gvn_across_calls=True,
            collapse_cast_chains=False,  # arrives with 3cc38704
            fold_cmp_chains=False,  # arrives with 3cc38710
            unswitch=False,  # O3 aggressive unswitching: 3cc38711
            alias_max_objects=48,  # raised by 3cc38708
            vrp_widen_after=2,  # raised by 3cc38706
            vrp_extended_ops=False,  # arrives with 3cc38722 (Listing 8b)
            # LLVM's full unroller is markedly more aggressive than
            # GCC's cunroll — a genuine source of its DCE advantage.
            unroll_max_trip=cfg.unroll_max_trip * 2,
            unroll_max_body=cfg.unroll_max_body * 2,
        )
        if level == O3:
            cfg = cfg.with_(sccp_iterations=2)
    else:
        raise ValueError(f"unknown family {family!r}")
    return cfg


def finalize_config(cfg: PipelineConfig) -> PipelineConfig:
    """Resolve derived pipeline structure after commits were applied."""
    return cfg.with_(passes=_with_cleanup_rounds(cfg.passes, cfg.sccp_iterations))
