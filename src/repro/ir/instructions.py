"""IR instruction set.

A deliberately small, orthogonal instruction set:

========== ===========================================================
``alloca``   create a stack object (address result)
``gep``      pointer arithmetic: ``base + index`` elements
``load``     read one integer cell through a pointer
``store``    write one integer cell through a pointer
``binop``    integer arithmetic/bitwise op in an explicit type
``icmp``     integer comparison (explicit operand type, i32 result)
``pcmp``     pointer equality comparison (i32 result)
``cast``     integer width/signedness conversion
``select``   ``cond ? a : b`` without control flow
``call``     function call (opaque or defined callee)
``phi``      SSA merge
``br``       conditional branch (non-zero = taken)
``jmp``      unconditional branch
``ret``      return
``unreachable`` end of a block proven never to execute
========== ===========================================================

Instructions that produce a result are themselves :class:`Value`\\ s.
Operand access is uniform through :meth:`Instr.operands` and
:meth:`Instr.replace_uses`, which is what makes the passes generic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ..lang.types import INT, IntType, PointerType, Type, VoidType
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import Block


class Instr(Value):
    """Base instruction.  ``block`` is maintained by Block helpers."""

    __slots__ = ("ty", "block", "name")

    def __init__(self, ty: Type) -> None:
        self.ty = ty
        self.block: "Block | None" = None
        self.name: str | None = None  # printer-assigned

    # -- generic operand plumbing -------------------------------------

    def operands(self) -> list[Value]:
        raise NotImplementedError

    def set_operands(self, new: list[Value]) -> None:
        raise NotImplementedError

    def replace_uses(self, mapping: dict[Value, Value]) -> bool:
        """Substitute operands according to ``mapping`` (by identity).

        Returns True when anything changed.
        """
        ops = self.operands()
        changed = False
        for i, op in enumerate(ops):
            new = mapping.get(op)
            if new is not None and new is not op:
                ops[i] = new
                changed = True
        if changed:
            self.set_operands(ops)
        return changed

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.set_operands([fn(op) for op in self.operands()])

    # -- classification -------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, Jmp, Ret, Unreachable))

    def has_side_effects(self) -> bool:
        """True when the instruction must not be removed even if its
        result is unused."""
        return isinstance(self, (Store, Call)) or self.is_terminator

    def produces_value(self) -> bool:
        return not isinstance(self.ty, VoidType) and not self.is_terminator


class Alloca(Instr):
    """A stack object of ``length`` cells of ``element`` type.

    When ``is_pointer_slot`` is true the (single) cell stores a
    *pointer to element* rather than an element; such slots are read
    with :class:`LoadPtr`.  The Alloca's own value type is the address
    of the slot in both cases.
    """

    __slots__ = ("var_name", "element", "length", "is_pointer_slot")

    def __init__(
        self,
        var_name: str,
        element: IntType,
        length: int = 1,
        is_pointer_slot: bool = False,
    ) -> None:
        super().__init__(PointerType(element))
        self.var_name = var_name
        self.element = element
        self.length = length
        self.is_pointer_slot = is_pointer_slot

    def operands(self) -> list[Value]:
        return []

    def set_operands(self, new: list[Value]) -> None:
        assert not new


class Gep(Instr):
    """``result = base + index`` (in elements).  ``base`` is a pointer."""

    __slots__ = ("base", "index")

    def __init__(self, base: Value, index: Value) -> None:
        assert isinstance(base.ty, PointerType), base
        super().__init__(base.ty)
        self.base = base
        self.index = index

    def operands(self) -> list[Value]:
        return [self.base, self.index]

    def set_operands(self, new: list[Value]) -> None:
        self.base, self.index = new


class Load(Instr):
    __slots__ = ("address",)

    def __init__(self, address: Value) -> None:
        assert isinstance(address.ty, PointerType), address
        super().__init__(address.ty.pointee)
        self.address = address

    def operands(self) -> list[Value]:
        return [self.address]

    def set_operands(self, new: list[Value]) -> None:
        (self.address,) = new


class LoadPtr(Instr):
    """Load a *pointer* cell (MiniC pointer variables live in memory
    until mem2reg promotes them)."""

    __slots__ = ("address", "pointee")

    def __init__(self, address: Value, pointee: IntType) -> None:
        super().__init__(PointerType(pointee))
        self.address = address
        self.pointee = pointee

    def operands(self) -> list[Value]:
        return [self.address]

    def set_operands(self, new: list[Value]) -> None:
        (self.address,) = new


class Store(Instr):
    __slots__ = ("address", "value")

    def __init__(self, address: Value, value: Value) -> None:
        super().__init__(VoidType())
        self.address = address
        self.value = value

    def operands(self) -> list[Value]:
        return [self.address, self.value]

    def set_operands(self, new: list[Value]) -> None:
        self.address, self.value = new


class BinOp(Instr):
    """Arithmetic/bitwise op; both operands and result have type ``ty``."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Value, rhs: Value, ty: IntType) -> None:
        super().__init__(ty)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def set_operands(self, new: list[Value]) -> None:
        self.lhs, self.rhs = new


class ICmp(Instr):
    """Integer comparison in ``operand_ty``; produces i32 0/1."""

    __slots__ = ("op", "lhs", "rhs", "operand_ty")

    def __init__(self, op: str, lhs: Value, rhs: Value, operand_ty: IntType) -> None:
        super().__init__(INT)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.operand_ty = operand_ty

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def set_operands(self, new: list[Value]) -> None:
        self.lhs, self.rhs = new


class PCmp(Instr):
    """Pointer equality comparison ('==' or '!='); produces i32 0/1."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Value, rhs: Value) -> None:
        assert op in ("==", "!=")
        super().__init__(INT)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def set_operands(self, new: list[Value]) -> None:
        self.lhs, self.rhs = new


class Cast(Instr):
    """Integer conversion from the operand's type to ``ty``."""

    __slots__ = ("value",)

    def __init__(self, value: Value, to_ty: IntType) -> None:
        super().__init__(to_ty)
        self.value = value

    def operands(self) -> list[Value]:
        return [self.value]

    def set_operands(self, new: list[Value]) -> None:
        (self.value,) = new


class Select(Instr):
    """``cond != 0 ? if_true : if_false`` — no control flow."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Value, if_true: Value, if_false: Value, ty: Type) -> None:
        super().__init__(ty)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def operands(self) -> list[Value]:
        return [self.cond, self.if_true, self.if_false]

    def set_operands(self, new: list[Value]) -> None:
        self.cond, self.if_true, self.if_false = new


class Call(Instr):
    __slots__ = ("callee", "args")

    def __init__(self, callee: str, args: list[Value], return_ty: Type) -> None:
        super().__init__(return_ty)
        self.callee = callee
        self.args = list(args)

    def operands(self) -> list[Value]:
        return list(self.args)

    def set_operands(self, new: list[Value]) -> None:
        self.args = list(new)


class Phi(Instr):
    """SSA merge: one incoming value per predecessor block."""

    __slots__ = ("incomings",)

    def __init__(self, ty: Type, incomings: list[tuple["Block", Value]] | None = None) -> None:
        super().__init__(ty)
        self.incomings: list[tuple["Block", Value]] = list(incomings or [])

    def operands(self) -> list[Value]:
        return [v for _, v in self.incomings]

    def set_operands(self, new: list[Value]) -> None:
        assert len(new) == len(self.incomings)
        self.incomings = [(b, v) for (b, _), v in zip(self.incomings, new)]

    def incoming_for(self, block: "Block") -> Value:
        for b, v in self.incomings:
            if b is block:
                return v
        raise KeyError(f"no incoming from {block}")

    def remove_incoming(self, block: "Block") -> None:
        self.incomings = [(b, v) for b, v in self.incomings if b is not block]


class Br(Instr):
    """Conditional branch; any non-zero condition takes ``if_true``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Value, if_true: "Block", if_false: "Block") -> None:
        super().__init__(VoidType())
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def operands(self) -> list[Value]:
        return [self.cond]

    def set_operands(self, new: list[Value]) -> None:
        (self.cond,) = new


class Jmp(Instr):
    __slots__ = ("target",)

    def __init__(self, target: "Block") -> None:
        super().__init__(VoidType())
        self.target = target

    def operands(self) -> list[Value]:
        return []

    def set_operands(self, new: list[Value]) -> None:
        assert not new


class Ret(Instr):
    __slots__ = ("value",)

    def __init__(self, value: Value | None) -> None:
        super().__init__(VoidType())
        self.value = value

    def operands(self) -> list[Value]:
        return [] if self.value is None else [self.value]

    def set_operands(self, new: list[Value]) -> None:
        if self.value is None:
            assert not new
        else:
            (self.value,) = new


class Unreachable(Instr):
    def __init__(self) -> None:
        super().__init__(VoidType())

    def operands(self) -> list[Value]:
        return []

    def set_operands(self, new: list[Value]) -> None:
        assert not new


def successors(term: Instr) -> list["Block"]:
    """The successor blocks of a terminator instruction."""
    if isinstance(term, Br):
        return [term.if_true, term.if_false]
    if isinstance(term, Jmp):
        return [term.target]
    return []


def retarget(term: Instr, old: "Block", new: "Block") -> None:
    """Redirect every edge of ``term`` that points at ``old`` to ``new``."""
    if isinstance(term, Br):
        if term.if_true is old:
            term.if_true = new
        if term.if_false is old:
            term.if_false = new
    elif isinstance(term, Jmp):
        if term.target is old:
            term.target = new


MEMORY_INSTRS = (Load, LoadPtr, Store)


def loads_from(instr: Instr) -> Value | None:
    if isinstance(instr, (Load, LoadPtr)):
        return instr.address
    return None
