"""SSA-flavoured intermediate representation and its tooling."""

from . import instructions
from .dominators import DominatorTree
from .function import Block, ExternFunction, GlobalInfo, IRFunction, Module
from .interp import run_module
from .printer import print_function, print_module
from .values import Constant, GlobalRef, NullPtr, Param, Value, const_int
from .verify import VerificationError, verify_function, verify_module

__all__ = [
    "Block",
    "Constant",
    "DominatorTree",
    "ExternFunction",
    "GlobalInfo",
    "GlobalRef",
    "IRFunction",
    "Module",
    "NullPtr",
    "Param",
    "Value",
    "VerificationError",
    "const_int",
    "instructions",
    "print_function",
    "print_module",
    "run_module",
    "verify_function",
    "verify_module",
]
