"""IR containers: basic blocks, functions, modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.types import ArrayType, IntType, PointerType, Type
from . import instructions as ins
from .values import GlobalRef, Param, Value


#: Optional boolean attributes loop passes set on header blocks to
#: claim a loop (``vectorize`` → ``no_unroll``, ``unswitch`` →
#: ``unswitched``).  They gate later transformations, so structural
#: clones and fingerprints must account for them.
BLOCK_TAGS = ("no_unroll", "unswitched")


class Block:
    """A basic block: a label plus a list of instructions, the last of
    which is the terminator once construction finishes."""

    _counter = 0

    def __init__(self, label: str | None = None) -> None:
        if label is None:
            Block._counter += 1
            label = f"bb{Block._counter}"
        self.label = label
        self.instrs: list[ins.Instr] = []

    def __repr__(self) -> str:
        return f"<Block {self.label}>"

    # -- structure ----------------------------------------------------

    @property
    def terminator(self) -> ins.Instr | None:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> list["Block"]:
        term = self.terminator
        return ins.successors(term) if term is not None else []

    def phis(self) -> list[ins.Phi]:
        out = []
        for i in self.instrs:
            if isinstance(i, ins.Phi):
                out.append(i)
            else:
                break
        return out

    def non_phis(self) -> list[ins.Instr]:
        return [i for i in self.instrs if not isinstance(i, ins.Phi)]

    # -- mutation -------------------------------------------------------

    def append(self, instr: ins.Instr) -> ins.Instr:
        assert self.terminator is None, f"{self.label} already terminated"
        instr.block = self
        self.instrs.append(instr)
        return instr

    def insert_before_terminator(self, instr: ins.Instr) -> ins.Instr:
        instr.block = self
        if self.terminator is not None:
            self.instrs.insert(len(self.instrs) - 1, instr)
        else:
            self.instrs.append(instr)
        return instr

    def insert_phi(self, phi: ins.Phi) -> ins.Phi:
        phi.block = self
        self.instrs.insert(0, phi)
        return phi

    def remove(self, instr: ins.Instr) -> None:
        self.instrs.remove(instr)
        instr.block = None

    def replace_terminator(self, new_term: ins.Instr) -> None:
        if self.terminator is not None:
            self.instrs.pop()
        new_term.block = self
        self.instrs.append(new_term)


class IRFunction:
    def __init__(
        self,
        name: str,
        return_ty: Type,
        params: list[Param],
        static: bool = False,
    ) -> None:
        self.name = name
        self.return_ty = return_ty
        self.params = params
        self.static = static
        self.blocks: list[Block] = []

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def new_block(self, label: str | None = None) -> Block:
        block = Block(label)
        self.blocks.append(block)
        return block

    def instructions(self):
        for block in self.blocks:
            yield from block.instrs

    def remove_block(self, block: Block) -> None:
        self.blocks.remove(block)

    def predecessors(self) -> dict[Block, list[Block]]:
        preds: dict[Block, list[Block]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def reachable_blocks(self) -> list[Block]:
        """Blocks reachable from entry, in DFS preorder."""
        seen: set[int] = set()
        order: list[Block] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if id(block) in seen:
                continue
            seen.add(id(block))
            order.append(block)
            stack.extend(reversed(block.successors()))
        return order

    def reverse_postorder(self) -> list[Block]:
        seen: set[int] = set()
        post: list[Block] = []

        def visit(block: Block) -> None:
            stack = [(block, iter(block.successors()))]
            seen.add(id(block))
            while stack:
                current, it = stack[-1]
                advanced = False
                for succ in it:
                    if id(succ) not in seen:
                        seen.add(id(succ))
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    post.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(post))

    def drop_unreachable_blocks(self) -> bool:
        """Remove blocks not reachable from entry; fix phis. Returns
        True when anything was removed."""
        reachable = {id(b) for b in self.reachable_blocks()}
        dead = [b for b in self.blocks if id(b) not in reachable]
        if not dead:
            return False
        dead_ids = {id(b) for b in dead}
        self.blocks = [b for b in self.blocks if id(b) not in dead_ids]
        for block in self.blocks:
            for phi in block.phis():
                phi.incomings = [
                    (b, v) for b, v in phi.incomings if id(b) not in dead_ids
                ]
        return True


@dataclass
class GlobalInfo:
    """A module-level variable."""

    name: str
    ty: Type  # IntType, PointerType or ArrayType
    init: object = None  # int | list[int] | ('addr', sym, index) | None
    static: bool = False

    @property
    def element(self) -> IntType:
        if isinstance(self.ty, ArrayType):
            return self.ty.element
        if isinstance(self.ty, PointerType):
            return self.ty.pointee
        assert isinstance(self.ty, IntType)
        return self.ty

    @property
    def length(self) -> int:
        return self.ty.length if isinstance(self.ty, ArrayType) else 1

    @property
    def is_pointer_slot(self) -> bool:
        return isinstance(self.ty, PointerType)

    def initial_cells(self) -> list:
        """The initial cell values (ints, or an ('addr', sym, idx)
        tuple for pointer slots, or None for null pointers)."""
        if isinstance(self.ty, ArrayType):
            if isinstance(self.init, list):
                return list(self.init)
            return [0] * self.ty.length
        if isinstance(self.ty, PointerType):
            return [self.init]  # None or ('addr', sym, idx)
        return [self.init if isinstance(self.init, int) else 0]


@dataclass
class ExternFunction:
    """An opaque callee: body unknown to the compiler (markers etc.)."""

    name: str
    return_ty: Type
    param_tys: list[Type] = field(default_factory=list)


class Module:
    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: dict[str, GlobalInfo] = {}
        self.functions: dict[str, IRFunction] = {}
        self.externs: dict[str, ExternFunction] = {}

    def add_global(self, info: GlobalInfo) -> GlobalInfo:
        self.globals[info.name] = info
        return info

    def global_ref(self, name: str) -> GlobalRef:
        info = self.globals[name]
        return GlobalRef(name, PointerType(info.element))

    def add_function(self, func: IRFunction) -> IRFunction:
        self.functions[func.name] = func
        return func

    def add_extern(self, ext: ExternFunction) -> ExternFunction:
        self.externs[ext.name] = ext
        return ext

    def callee_return_ty(self, name: str) -> Type:
        if name in self.functions:
            return self.functions[name].return_ty
        return self.externs[name].return_ty

    def is_opaque(self, name: str) -> bool:
        return name in self.externs

    def clone(self) -> "Module":
        """A fully detached structural copy (see :mod:`repro.ir.clone`)."""
        from .clone import clone_module

        return clone_module(self)
