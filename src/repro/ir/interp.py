"""IR interpreter.

Executes a :class:`repro.ir.function.Module` with the same observable
semantics as the MiniC reference interpreter: the same marker trace,
exit code, and global-state checksum.  The test suite uses this for
*translation validation*: for random programs,
``interp(AST) == interp(IR at O0) == interp(IR at O3)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.interpreter import (
    ExecutionResult,
    StepLimitExceeded,
    call_observation,
    pointer_cell_hash,
)
from ..interp.interpreter import Address as _AstAddress
from ..lang.semantics import eval_binop, wrap
from ..lang.types import INT, IntType
from . import instructions as ins
from .function import Block, IRFunction, Module
from .values import Constant, GlobalRef, NullPtr, Param, Value

DEFAULT_STEP_LIMIT = 4_000_000


class IRInterpreterError(RuntimeError):
    pass


@dataclass(frozen=True)
class RAddr:
    """A runtime pointer: cell ``index`` of storage object ``object_id``."""

    object_id: str
    index: int


class _RStorage:
    __slots__ = ("cells", "element")

    def __init__(self, cells: list, element: IntType) -> None:
        self.cells = cells
        self.element = element


def run_module(module: Module, step_limit: int = DEFAULT_STEP_LIMIT) -> ExecutionResult:
    """Execute ``module`` from ``main`` and return the result."""
    return _IRInterp(module, step_limit).run()


class _IRInterp:
    def __init__(self, module: Module, step_limit: int) -> None:
        self.module = module
        self.step_limit = step_limit
        self.steps = 0
        self.call_trace = 0
        self.marker_hits: dict[str, int] = {}
        self.storage: dict[str, _RStorage] = {}
        self._activation = 0
        self._globals_order: list[str] = []
        self._init_globals()

    def _init_globals(self) -> None:
        for info in self.module.globals.values():
            if not info.static:
                self._globals_order.append(info.name)
            cells = []
            for cell in info.initial_cells():
                if cell is None:
                    cells.append(None)
                elif isinstance(cell, tuple) and cell and cell[0] == "addr":
                    cells.append(RAddr(cell[1], cell[2]))
                else:
                    cells.append(wrap(int(cell), info.element))
            self.storage[info.name] = _RStorage(cells, info.element)

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(f"IR execution exceeded {self.step_limit} steps")

    def run(self) -> ExecutionResult:
        main = self.module.functions["main"]
        value = self._call_function(main, [])
        exit_code = value if isinstance(value, int) else 0
        return ExecutionResult(
            exit_code=wrap(exit_code, INT),
            marker_hits=dict(self.marker_hits),
            steps=self.steps,
            checksum=self._checksum(),
            call_trace=self.call_trace,
        )

    def _checksum(self) -> int:
        acc = 0xCBF29CE484222325
        for name in self._globals_order:
            for cell in self.storage[name].cells:
                if isinstance(cell, RAddr):
                    piece = pointer_cell_hash(cell.object_id, cell.index)
                elif cell is None:
                    piece = 0
                else:
                    piece = cell & 0xFFFFFFFFFFFFFFFF
                acc ^= piece
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc

    # -- execution -------------------------------------------------------

    def _call_function(self, func: IRFunction, args: list):
        self._activation += 1
        env: dict[int, object] = {}
        frame_objects: list[str] = []
        for param, value in zip(func.params, args):
            env[id(param)] = value
        try:
            return self._run_blocks(func, env, frame_objects)
        finally:
            for obj in frame_objects:
                self.storage.pop(obj, None)

    def _run_blocks(self, func: IRFunction, env: dict[int, object], frame_objects: list[str]):
        block = func.entry
        prev: Block | None = None
        while True:
            # Phis evaluate simultaneously against the incoming edge.
            phis = block.phis()
            if phis:
                assert prev is not None, "phi in entry block"
                values = [self._value(phi.incoming_for(prev), env) for phi in phis]
                for phi, value in zip(phis, values):
                    env[id(phi)] = value
            for instr in block.instrs[len(phis):]:
                self._tick()
                if isinstance(instr, ins.Br):
                    cond = self._value(instr.cond, env)
                    taken = instr.if_true if _truthy(cond) else instr.if_false
                    prev, block = block, taken
                    break
                if isinstance(instr, ins.Jmp):
                    prev, block = block, instr.target
                    break
                if isinstance(instr, ins.Ret):
                    if instr.value is None:
                        return None
                    return self._value(instr.value, env)
                if isinstance(instr, ins.Unreachable):
                    raise IRInterpreterError(f"{func.name}: executed unreachable")
                self._exec(instr, env, frame_objects)
            else:
                raise IRInterpreterError(f"{func.name}/{block.label}: fell off block")

    def _exec(self, instr: ins.Instr, env: dict[int, object], frame_objects: list[str]) -> None:
        if isinstance(instr, ins.Alloca):
            obj = f"%stack{self._activation}.{len(frame_objects)}.{instr.var_name}"
            if instr.is_pointer_slot:
                cells: list = [None]
            else:
                cells = [0] * instr.length
            self.storage[obj] = _RStorage(cells, instr.element)
            frame_objects.append(obj)
            env[id(instr)] = RAddr(obj, 0)
        elif isinstance(instr, ins.Gep):
            base = self._value(instr.base, env)
            index = self._value(instr.index, env)
            if not isinstance(base, RAddr):
                raise IRInterpreterError("gep on non-pointer")
            if isinstance(index, RAddr):
                raise IRInterpreterError("gep with pointer index")
            env[id(instr)] = RAddr(base.object_id, base.index + index)
        elif isinstance(instr, (ins.Load, ins.LoadPtr)):
            addr = self._value(instr.address, env)
            env[id(instr)] = self._load(addr)
        elif isinstance(instr, ins.Store):
            addr = self._value(instr.address, env)
            value = self._value(instr.value, env)
            self._store(addr, value)
        elif isinstance(instr, ins.BinOp):
            lhs = self._int(instr.lhs, env)
            rhs = self._int(instr.rhs, env)
            env[id(instr)] = eval_binop(instr.op, lhs, rhs, instr.ty)
        elif isinstance(instr, ins.ICmp):
            lhs = self._int(instr.lhs, env)
            rhs = self._int(instr.rhs, env)
            env[id(instr)] = eval_binop(instr.op, lhs, rhs, instr.operand_ty)
        elif isinstance(instr, ins.PCmp):
            lhs = self._value(instr.lhs, env)
            rhs = self._value(instr.rhs, env)
            same = lhs == rhs
            env[id(instr)] = (1 if same else 0) if instr.op == "==" else (0 if same else 1)
        elif isinstance(instr, ins.Cast):
            value = self._value(instr.value, env)
            if isinstance(value, RAddr):
                raise IRInterpreterError("cast of pointer")
            env[id(instr)] = wrap(int(value), instr.ty)
        elif isinstance(instr, ins.Select):
            cond = self._value(instr.cond, env)
            env[id(instr)] = self._value(
                instr.if_true if _truthy(cond) else instr.if_false, env
            )
        elif isinstance(instr, ins.Call):
            env[id(instr)] = self._call(instr, env)
        else:
            raise IRInterpreterError(f"unhandled instruction {type(instr).__name__}")

    def _call(self, instr: ins.Call, env: dict[int, object]):
        args = [self._value(a, env) for a in instr.args]
        if self.module.is_opaque(instr.callee):
            self.marker_hits[instr.callee] = self.marker_hits.get(instr.callee, 0) + 1
            observed = [
                _AstAddress(a.object_id, a.index, None) if isinstance(a, RAddr) else a
                for a in args
            ]
            self.call_trace = (
                self.call_trace + call_observation(instr.callee, observed)
            ) & 0xFFFFFFFFFFFFFFFF
            ext = self.module.externs[instr.callee]
            return 0 if isinstance(ext.return_ty, IntType) else None
        func = self.module.functions[instr.callee]
        result = self._call_function(func, args)
        if result is None and isinstance(func.return_ty, IntType):
            result = 0
        return result

    # -- memory --------------------------------------------------------

    def _load(self, addr) -> object:
        if not isinstance(addr, RAddr):
            raise IRInterpreterError("load through null/invalid pointer")
        store = self.storage[addr.object_id]
        return store.cells[addr.index % len(store.cells)]

    def _store(self, addr, value) -> None:
        if not isinstance(addr, RAddr):
            raise IRInterpreterError("store through null/invalid pointer")
        store = self.storage[addr.object_id]
        store.cells[addr.index % len(store.cells)] = value

    # -- values ----------------------------------------------------------

    def _value(self, value: Value, env: dict[int, object]):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, NullPtr):
            return None
        if isinstance(value, GlobalRef):
            return RAddr(value.name, 0)
        try:
            return env[id(value)]
        except KeyError:
            raise IRInterpreterError(
                f"undefined value {type(value).__name__} (did a pass break SSA?)"
            ) from None

    def _int(self, value: Value, env: dict[int, object]) -> int:
        v = self._value(value, env)
        if isinstance(v, RAddr) or v is None:
            raise IRInterpreterError("integer operation on pointer")
        return v


def _truthy(value) -> bool:
    if isinstance(value, RAddr):
        return True
    return value not in (0, None)
