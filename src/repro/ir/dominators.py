"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm,
which is simple and fast enough for our function sizes.  Used by SSA
construction (mem2reg), GVN's dominator-order walk, and the verifier.
"""

from __future__ import annotations

from .function import Block, IRFunction


class DominatorTree:
    """Immutable snapshot of the dominance relation of a function.

    Only blocks reachable from entry participate; unreachable blocks
    are absent from all maps.
    """

    def __init__(self, func: IRFunction) -> None:
        self.func = func
        rpo = func.reverse_postorder()
        index = {id(b): i for i, b in enumerate(rpo)}
        preds = func.predecessors()
        idom: dict[int, Block] = {id(rpo[0]): rpo[0]}

        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                new_idom: Block | None = None
                for pred in preds[block]:
                    if id(pred) not in idom or id(pred) not in index:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom, index)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True

        self._rpo = rpo
        self._index = index
        self._idom = idom
        self._children: dict[int, list[Block]] = {id(b): [] for b in rpo}
        for block in rpo[1:]:
            parent = idom.get(id(block))
            if parent is not None:
                self._children[id(parent)].append(block)
        self._frontiers: dict[int, list[Block]] | None = None
        self._preds = preds

    @staticmethod
    def _intersect(b1: Block, b2: Block, idom: dict[int, Block], index: dict[int, int]) -> Block:
        while b1 is not b2:
            while index[id(b1)] > index[id(b2)]:
                b1 = idom[id(b1)]
            while index[id(b2)] > index[id(b1)]:
                b2 = idom[id(b2)]
        return b1

    # -- queries ----------------------------------------------------------

    @property
    def reverse_postorder(self) -> list[Block]:
        return list(self._rpo)

    def idom(self, block: Block) -> Block | None:
        """Immediate dominator (None for entry / unreachable blocks)."""
        parent = self._idom.get(id(block))
        if parent is block:
            return None
        return parent

    def children(self, block: Block) -> list[Block]:
        return list(self._children.get(id(block), []))

    def dominates(self, a: Block, b: Block) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        runner: Block | None = b
        while runner is not None:
            if runner is a:
                return True
            parent = self._idom.get(id(runner))
            if parent is runner:
                return False
            runner = parent
        return False

    def frontiers(self) -> dict[int, list[Block]]:
        """Dominance frontier per block id (computed lazily)."""
        if self._frontiers is not None:
            return self._frontiers
        df: dict[int, list[Block]] = {id(b): [] for b in self._rpo}
        for block in self._rpo:
            preds = [p for p in self._preds[block] if id(p) in self._index]
            if len(preds) < 2:
                continue
            target_idom = self._idom[id(block)]
            for pred in preds:
                runner = pred
                while runner is not target_idom:
                    bucket = df[id(runner)]
                    if block not in bucket:
                        bucket.append(block)
                    runner = self._idom[id(runner)]
        self._frontiers = df
        return df

    def dom_preorder(self) -> list[Block]:
        """Blocks in dominator-tree preorder (parents before children)."""
        order: list[Block] = []
        stack = [self._rpo[0]]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self._children[id(block)]))
        return order
