"""IR value model.

Every operand of an instruction is a :class:`Value`.  Values are:

* :class:`Constant` — an integer constant with an explicit ``IntType``;
* :class:`NullPtr` — the null pointer;
* :class:`GlobalRef` — the address of a global object (element 0);
* :class:`Param` — a function parameter (SSA value);
* instructions themselves (see :mod:`repro.ir.instructions`) — an
  instruction that produces a result *is* that result.

Identity is object identity; the printer assigns stable names.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.types import IntType, PointerType, Type


class Value:
    """Base class for everything an instruction can reference."""

    ty: Type

    def is_constant(self) -> bool:
        return isinstance(self, (Constant, NullPtr))


@dataclass(frozen=True)
class Constant(Value):
    """An integer constant already wrapped into ``ty``'s range."""

    value: int
    ty: IntType

    def __post_init__(self) -> None:
        if not (self.ty.min_value <= self.value <= self.ty.max_value):
            raise ValueError(f"constant {self.value} out of range for {self.ty}")

    def __str__(self) -> str:
        return f"{self.value}:{_short(self.ty)}"


@dataclass(frozen=True)
class NullPtr(Value):
    ty: PointerType

    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class GlobalRef(Value):
    """The address of global object ``name`` (its first element)."""

    name: str
    ty: PointerType  # pointer to the element type

    def __str__(self) -> str:
        return f"@{self.name}"


class Param(Value):
    """A function parameter; an SSA value defined at function entry."""

    def __init__(self, name: str, ty: Type) -> None:
        self.name = name
        self.ty = ty

    def __str__(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"Param({self.name})"


def _short(ty: Type) -> str:
    from ..lang.types import ArrayType, IntType, PointerType, VoidType

    if isinstance(ty, IntType):
        return f"{'i' if ty.signed else 'u'}{ty.width}"
    if isinstance(ty, PointerType):
        return f"p{_short(ty.pointee)}"
    if isinstance(ty, ArrayType):
        return f"[{ty.length} x {_short(ty.element)}]"
    if isinstance(ty, VoidType):
        return "void"
    return str(ty)


def const_int(value: int, ty: IntType) -> Constant:
    """Build a constant, wrapping ``value`` into ``ty``'s range."""
    from ..lang.semantics import wrap

    return Constant(wrap(value, ty), ty)


def is_zero(value: Value) -> bool:
    return isinstance(value, Constant) and value.value == 0 or isinstance(value, NullPtr)


def is_const_equal(value: Value, number: int) -> bool:
    return isinstance(value, Constant) and value.value == number
