"""IR verifier.

Catches malformed IR as early as possible: structural invariants,
def-dominates-use, and phi consistency.  Every pass in the test suite
runs under the verifier, which is how pass bugs surface as crisp
errors instead of wrong code.
"""

from __future__ import annotations

from ..lang.types import IntType, PointerType
from . import instructions as ins
from .dominators import DominatorTree
from .function import Block, IRFunction, Module
from .printer import print_function
from .values import Constant, GlobalRef, NullPtr, Param, Value


class VerificationError(AssertionError):
    pass


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        verify_function(func, module)


def verify_function(func: IRFunction, module: Module | None = None) -> None:
    try:
        _verify_function(func, module)
    except VerificationError as err:
        raise VerificationError(f"{err}\n--- function dump ---\n{print_function(func)}") from None


def _verify_function(func: IRFunction, module: Module | None) -> None:
    if not func.blocks:
        raise VerificationError(f"{func.name}: no blocks")
    block_set = {id(b) for b in func.blocks}
    preds = func.predecessors()
    reachable = {id(b) for b in func.reachable_blocks()}

    defined_in: dict[int, Block] = {}
    position: dict[int, int] = {}
    for block in func.blocks:
        for idx, instr in enumerate(block.instrs):
            if id(instr) in defined_in:
                raise VerificationError(f"instruction appears twice: {instr}")
            defined_in[id(instr)] = block
            position[id(instr)] = idx
            if instr.block is not block:
                raise VerificationError(f"{func.name}/{block.label}: bad back-pointer")

    for block in func.blocks:
        term = block.terminator
        if term is None:
            raise VerificationError(f"{func.name}/{block.label}: missing terminator")
        for idx, instr in enumerate(block.instrs):
            if instr.is_terminator and idx != len(block.instrs) - 1:
                raise VerificationError(f"{func.name}/{block.label}: terminator not last")
            if isinstance(instr, ins.Phi) and idx > 0 and not isinstance(block.instrs[idx - 1], ins.Phi):
                raise VerificationError(f"{func.name}/{block.label}: phi after non-phi")
        for succ in block.successors():
            if id(succ) not in block_set:
                raise VerificationError(
                    f"{func.name}/{block.label}: successor {succ.label} not in function"
                )

    dom = DominatorTree(func)
    params = {id(p) for p in func.params}

    def check_use(user: ins.Instr, block: Block, value: Value, from_block: Block | None = None) -> None:
        if isinstance(value, (Constant, NullPtr, GlobalRef)):
            return
        if id(value) in params:
            return
        if not isinstance(value, ins.Instr):
            raise VerificationError(f"{func.name}: operand of unknown kind {value!r}")
        def_block = defined_in.get(id(value))
        if def_block is None:
            raise VerificationError(
                f"{func.name}/{block.label}: use of instruction not in function: "
                f"{type(value).__name__}"
            )
        if id(block) not in reachable:
            return  # dominance is meaningless in unreachable code
        use_block = from_block if from_block is not None else block
        if id(use_block) not in reachable:
            return
        if def_block is use_block and from_block is None:
            if position[id(value)] >= position[id(user)]:
                raise VerificationError(
                    f"{func.name}/{block.label}: use before def of {type(value).__name__}"
                )
            return
        if not dom.dominates(def_block, use_block):
            raise VerificationError(
                f"{func.name}/{block.label}: def in {def_block.label} does not dominate use"
            )

    for block in func.blocks:
        pred_ids = {id(p) for p in preds[block]}
        for instr in block.instrs:
            if isinstance(instr, ins.Phi):
                incoming_ids = {id(b) for b, _ in instr.incomings}
                if id(block) in reachable and incoming_ids != pred_ids:
                    raise VerificationError(
                        f"{func.name}/{block.label}: phi incomings "
                        f"{sorted(b.label for b, _ in instr.incomings)} != preds "
                        f"{sorted(p.label for p in preds[block])}"
                    )
                for from_block, value in instr.incomings:
                    check_use(instr, block, value, from_block=from_block)
            else:
                for op in instr.operands():
                    check_use(instr, block, op)
            _check_types(func, block, instr, module)


def _check_types(func: IRFunction, block: Block, instr: ins.Instr, module: Module | None) -> None:
    where = f"{func.name}/{block.label}"
    if isinstance(instr, ins.BinOp):
        for op in (instr.lhs, instr.rhs):
            if isinstance(op, Constant) and op.ty != instr.ty:
                raise VerificationError(f"{where}: binop operand type {op.ty} != {instr.ty}")
            if isinstance(op.ty, PointerType):
                raise VerificationError(f"{where}: pointer operand in binop")
    elif isinstance(instr, ins.ICmp):
        for op in (instr.lhs, instr.rhs):
            if isinstance(op, Constant) and op.ty != instr.operand_ty:
                raise VerificationError(
                    f"{where}: icmp operand type {op.ty} != {instr.operand_ty}"
                )
    elif isinstance(instr, ins.PCmp):
        for op in (instr.lhs, instr.rhs):
            if not isinstance(op.ty, PointerType):
                raise VerificationError(f"{where}: pcmp of non-pointer")
    elif isinstance(instr, ins.Store):
        if not isinstance(instr.address.ty, PointerType):
            raise VerificationError(f"{where}: store through non-pointer")
    elif isinstance(instr, (ins.Load, ins.LoadPtr)):
        if not isinstance(instr.address.ty, PointerType):
            raise VerificationError(f"{where}: load through non-pointer")
    elif isinstance(instr, ins.Call) and module is not None:
        if instr.callee not in module.functions and instr.callee not in module.externs:
            raise VerificationError(f"{where}: call to unknown {instr.callee}")
