"""Textual IR dump (for debugging, tests, and golden comparisons)."""

from __future__ import annotations

from . import instructions as ins
from .function import BLOCK_TAGS, Block, IRFunction, Module
from .values import Constant, GlobalRef, NullPtr, Param, Value, _short


def print_module(module: Module) -> str:
    parts: list[str] = []
    for info in module.globals.values():
        prefix = "static " if info.static else ""
        parts.append(f"{prefix}global @{info.name} : {info.ty} = {info.init}\n")
    for ext in module.externs.values():
        parts.append(f"declare {ext.return_ty} @{ext.name}(...)\n")
    for func in module.functions.values():
        parts.append(print_function(func))
    return "".join(parts)


def print_function(func: IRFunction) -> str:
    namer = _Namer()
    parts = [f"define {func.return_ty} @{func.name}("]
    parts.append(", ".join(f"%{p.name}: {p.ty}" for p in func.params))
    parts.append(") {\n")
    for block in func.blocks:
        parts.append(f"{block.label}:\n")
        for instr in block.instrs:
            parts.append(f"  {format_instr(instr, namer)}\n")
    parts.append("}\n")
    return "".join(parts)


def fingerprint_module(module: Module) -> str:
    """A canonical text form of ``module``, equal for two modules iff
    they are structurally identical.

    Unlike :func:`print_module`, block labels are renamed to ``b0, b1,
    ...`` in block-list order: raw labels come from a process-global
    counter, so structurally identical modules produced by different
    pipeline runs print differently but fingerprint equal.  Extern
    parameter types and :data:`~repro.ir.function.BLOCK_TAGS` are
    included (``print_module`` elides both, but the tags change what
    later loop passes do).
    """
    parts: list[str] = []
    for info in module.globals.values():
        prefix = "static " if info.static else ""
        parts.append(f"{prefix}global @{info.name} : {info.ty} = {info.init}\n")
    for ext in module.externs.values():
        tys = ", ".join(str(t) for t in ext.param_tys)
        parts.append(f"declare {ext.return_ty} @{ext.name}({tys})\n")
    for func in module.functions.values():
        namer = _Namer()
        labels = {id(b): f"b{i}" for i, b in enumerate(func.blocks)}
        parts.append(f"define {func.return_ty} @{func.name}(")
        parts.append(", ".join(f"%{p.name}: {p.ty}" for p in func.params))
        parts.append(") {\n")
        for block in func.blocks:
            tags = "".join(
                f" !{tag}" for tag in BLOCK_TAGS if getattr(block, tag, False)
            )
            parts.append(f"{labels[id(block)]}:{tags}\n")
            for instr in block.instrs:
                parts.append(f"  {format_instr(instr, namer, labels)}\n")
        parts.append("}\n")
    return "".join(parts)


class _Namer:
    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._next = 0

    def name(self, value: Value) -> str:
        key = id(value)
        if key not in self._names:
            self._names[key] = f"%t{self._next}"
            self._next += 1
        return self._names[key]


def format_value(value: Value, namer: _Namer) -> str:
    if isinstance(value, Constant):
        return str(value)
    if isinstance(value, NullPtr):
        return "null"
    if isinstance(value, GlobalRef):
        return f"@{value.name}"
    if isinstance(value, Param):
        return f"%{value.name}"
    return namer.name(value)


def format_instr(
    instr: ins.Instr,
    namer: _Namer | None = None,
    labels: dict[int, str] | None = None,
) -> str:
    namer = namer or _Namer()
    if labels is None:
        lab = lambda b: b.label  # noqa: E731 - local shorthand
    else:
        lab = lambda b: labels[id(b)]  # noqa: E731
    v = lambda x: format_value(x, namer)  # noqa: E731 - local shorthand
    result = namer.name(instr) + " = " if instr.produces_value() else ""
    if isinstance(instr, ins.Alloca):
        kind = "ptr-slot" if instr.is_pointer_slot else f"{instr.element}"
        return f"{result}alloca {instr.var_name} [{instr.length} x {kind}]"
    if isinstance(instr, ins.Gep):
        return f"{result}gep {v(instr.base)}, {v(instr.index)}"
    if isinstance(instr, ins.LoadPtr):
        return f"{result}loadptr {v(instr.address)}"
    if isinstance(instr, ins.Load):
        return f"{result}load {_short(instr.ty)} {v(instr.address)}"
    if isinstance(instr, ins.Store):
        return f"store {v(instr.value)} -> {v(instr.address)}"
    if isinstance(instr, ins.BinOp):
        return f"{result}{instr.op} {_short(instr.ty)} {v(instr.lhs)}, {v(instr.rhs)}"
    if isinstance(instr, ins.ICmp):
        return f"{result}icmp {instr.op} {_short(instr.operand_ty)} {v(instr.lhs)}, {v(instr.rhs)}"
    if isinstance(instr, ins.PCmp):
        return f"{result}pcmp {instr.op} {v(instr.lhs)}, {v(instr.rhs)}"
    if isinstance(instr, ins.Cast):
        return f"{result}cast {v(instr.value)} to {_short(instr.ty)}"
    if isinstance(instr, ins.Select):
        return f"{result}select {v(instr.cond)}, {v(instr.if_true)}, {v(instr.if_false)}"
    if isinstance(instr, ins.Call):
        args = ", ".join(v(a) for a in instr.args)
        return f"{result}call @{instr.callee}({args})"
    if isinstance(instr, ins.Phi):
        pairs = ", ".join(f"[{lab(b)}: {v(val)}]" for b, val in instr.incomings)
        return f"{result}phi {pairs}"
    if isinstance(instr, ins.Br):
        return f"br {v(instr.cond)}, {lab(instr.if_true)}, {lab(instr.if_false)}"
    if isinstance(instr, ins.Jmp):
        return f"jmp {lab(instr.target)}"
    if isinstance(instr, ins.Ret):
        return "ret" if instr.value is None else f"ret {v(instr.value)}"
    if isinstance(instr, ins.Unreachable):
        return "unreachable"
    return f"<unknown {type(instr).__name__}>"
