"""Fast structural clone of IR modules.

:func:`clone_module` rebuilds a :class:`~repro.ir.function.Module` —
every function, block, and instruction is a fresh object, with operand
and branch-target references remapped onto the clones — while sharing
the values the IR treats as immutable (:class:`Constant`,
:class:`NullPtr`, :class:`GlobalRef`, and the frozen
:mod:`repro.lang.types` instances).  It exists so the incremental
compilation engine can snapshot pipeline state at branch points in
O(module size) with small constants; ``copy.deepcopy`` spends most of
its time on memo/reduce bookkeeping these graphs never need.

The clone preserves *structure exactly*: dict insertion order of
globals/functions/externs, block order, block labels, instruction
order, and phi incoming order all carry over, so a pass run on the
clone makes the same decisions it would have made on the original.
"""

from __future__ import annotations

from . import instructions as ins
from .function import BLOCK_TAGS as _BLOCK_TAGS
from .function import Block, ExternFunction, GlobalInfo, IRFunction, Module
from .values import Param, Value


def clone_module(module: Module) -> Module:
    """A fully detached structural copy of ``module``."""
    out = Module(module.name)
    for info in module.globals.values():
        init = list(info.init) if isinstance(info.init, list) else info.init
        out.add_global(GlobalInfo(info.name, info.ty, init, info.static))
    for ext in module.externs.values():
        out.add_extern(
            ExternFunction(ext.name, ext.return_ty, list(ext.param_tys))
        )
    for func in module.functions.values():
        out.add_function(_clone_function(func))
    return out


def _clone_function(func: IRFunction) -> IRFunction:
    value_map: dict[Value, Value] = {}
    new_params = []
    for param in func.params:
        clone = Param(param.name, param.ty)
        value_map[param] = clone
        new_params.append(clone)
    out = IRFunction(func.name, func.return_ty, new_params, func.static)

    block_map: dict[int, Block] = {}
    for block in func.blocks:
        new_block = Block(block.label)
        # Loop passes tag headers they have claimed (vectorize sets
        # no_unroll, unswitch sets unswitched); the tags gate later
        # transformations, so a clone must carry them.
        for tag in _BLOCK_TAGS:
            if getattr(block, tag, False):
                setattr(new_block, tag, True)
        block_map[id(block)] = new_block
        out.blocks.append(new_block)

    # First pass: shell every instruction (operands still point at the
    # originals — phis and back edges may reference values/blocks that
    # appear later in iteration order).
    new_instrs: list[ins.Instr] = []
    for block in func.blocks:
        new_block = block_map[id(block)]
        for instr in block.instrs:
            clone = _shell_instr(instr, block_map)
            clone.block = new_block
            new_block.instrs.append(clone)
            value_map[instr] = clone
            new_instrs.append(clone)

    # Second pass: remap operands (and phi incoming blocks) onto clones.
    for clone in new_instrs:
        clone.replace_uses(value_map)
        if isinstance(clone, ins.Phi):
            clone.incomings = [
                (block_map[id(b)], v) for b, v in clone.incomings
            ]
    return out


def _shell_instr(instr: ins.Instr, block_map: dict[int, Block]) -> ins.Instr:
    """A fresh instruction of the same shape; value operands still
    reference the original objects (fixed up by the caller), branch
    targets are remapped immediately."""
    if isinstance(instr, ins.Alloca):
        return ins.Alloca(
            instr.var_name, instr.element, instr.length, instr.is_pointer_slot
        )
    if isinstance(instr, ins.Gep):
        return ins.Gep(instr.base, instr.index)
    if isinstance(instr, ins.LoadPtr):
        return ins.LoadPtr(instr.address, instr.pointee)
    if isinstance(instr, ins.Load):
        return ins.Load(instr.address)
    if isinstance(instr, ins.Store):
        return ins.Store(instr.address, instr.value)
    if isinstance(instr, ins.BinOp):
        return ins.BinOp(instr.op, instr.lhs, instr.rhs, instr.ty)
    if isinstance(instr, ins.ICmp):
        return ins.ICmp(instr.op, instr.lhs, instr.rhs, instr.operand_ty)
    if isinstance(instr, ins.PCmp):
        return ins.PCmp(instr.op, instr.lhs, instr.rhs)
    if isinstance(instr, ins.Cast):
        return ins.Cast(instr.value, instr.ty)
    if isinstance(instr, ins.Select):
        return ins.Select(instr.cond, instr.if_true, instr.if_false, instr.ty)
    if isinstance(instr, ins.Call):
        return ins.Call(instr.callee, list(instr.args), instr.ty)
    if isinstance(instr, ins.Phi):
        return ins.Phi(instr.ty, list(instr.incomings))
    if isinstance(instr, ins.Br):
        return ins.Br(
            instr.cond,
            block_map[id(instr.if_true)],
            block_map[id(instr.if_false)],
        )
    if isinstance(instr, ins.Jmp):
        return ins.Jmp(block_map[id(instr.target)])
    if isinstance(instr, ins.Ret):
        return ins.Ret(instr.value)
    if isinstance(instr, ins.Unreachable):
        return ins.Unreachable()
    raise TypeError(f"cannot clone {type(instr).__name__}")
