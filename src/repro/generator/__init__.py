"""Csmith-like random program generation for MiniC."""

from .config import GeneratorConfig
from .generator import generate_program

__all__ = ["GeneratorConfig", "generate_program"]
