"""Generator tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for random program generation.

    Defaults target Csmith-like programs: self-contained, input-free,
    terminating, UB-free, and with large dead regions (the paper
    measures ~90% of instrumented blocks dead on its corpus).
    """

    min_globals: int = 5
    max_globals: int = 10
    min_functions: int = 1
    max_functions: int = 4
    max_depth: int = 3
    min_block_stmts: int = 2
    max_block_stmts: int = 5
    max_loop_trip: int = 10
    max_expr_depth: int = 3
    #: probability that a generated if-condition is of the
    #: "usually false" shape (drives the dead-block fraction)
    dead_bias: float = 0.62
    array_fraction: float = 0.3
    pointer_fraction: float = 0.2
    static_fraction: float = 0.75
    call_fraction: float = 0.25
    else_fraction: float = 0.35
    switch_fraction: float = 0.08
    early_return_fraction: float = 0.12
