"""Csmith-like random MiniC program generator.

Generated programs are, by construction:

* **self-contained** — no inputs, no external state;
* **terminating** — every loop is counter-bounded and the call graph
  is acyclic (function ``i`` may only call ``j < i``);
* **UB-free** — MiniC semantics are total, array subscripts are kept
  in bounds at the source level (so the UB-safe C printing also holds
  for real compilers), pointers always point at live global storage;
* **dead-heavy** — most branch conditions are of usually-false shapes,
  yielding the ~90% dead instrumented blocks the paper relies on.

Every generated program is validated through the semantic checker
before being returned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..frontend.typecheck import check_program
from ..lang import ast_nodes as ast
from ..lang.types import (
    CHAR,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    ArrayType,
    IntType,
    PointerType,
)

_SCALAR_TYPES = (CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG)
_BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")

from .config import GeneratorConfig


@dataclass
class _GlobalSym:
    name: str
    ty: object
    static: bool
    #: reset-only globals are only ever assigned their initial value
    #: back — foldable by a stored-init analysis (LLVM), opaque to a
    #: readonly-only one (GCC); see paper Listing 4a.
    reset_only: bool = False
    #: read-only arrays are never written; with uniform initializers
    #: their unknown-index loads fold under the array rule GCC lacks.
    read_only: bool = False


@dataclass
class _Scope:
    """Visible scalar locals / loop counters / pointers at a site."""

    ints: list[tuple[str, IntType]] = field(default_factory=list)
    pointers: list[tuple[str, PointerType]] = field(default_factory=list)
    arrays: list[tuple[str, ArrayType]] = field(default_factory=list)
    counters: list[tuple[str, int]] = field(default_factory=list)  # (name, bound)
    protected: set[str] = field(default_factory=set)  # loop counters: no writes


def _addr_key(expr: ast.Expr) -> tuple[str, int]:
    """(object, element) denoted by an AddrOf initializer expression."""
    assert isinstance(expr, ast.AddrOf)
    lv = expr.lvalue
    if isinstance(lv, ast.VarRef):
        return (lv.name, 0)
    assert isinstance(lv, ast.Index) and isinstance(lv.base, ast.VarRef)
    assert isinstance(lv.index, ast.IntLit)
    return (lv.base.name, lv.index.value)


def generate_program(seed: int, config: GeneratorConfig | None = None) -> ast.Program:
    """Generate a random, checked MiniC program from ``seed``."""
    gen = _Generator(random.Random(seed), config or GeneratorConfig())
    program = gen.run()
    check_program(program)  # the generator's own safety net
    return program


class _Generator:
    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.globals: list[_GlobalSym] = []
        self.functions: list[ast.FuncDef] = []
        self._call_counts: dict[str, int] = {}
        self._global_inits: dict[str, int] = {}
        self._names = 0

    def _fresh(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}_{self._names}"

    # -- top level -------------------------------------------------------

    def run(self) -> ast.Program:
        rng, cfg = self.rng, self.config
        decls: list[ast.Decl] = []
        n_globals = rng.randint(cfg.min_globals, cfg.max_globals)
        for _ in range(n_globals):
            decls.append(self._global())
        # Pointer globals referencing earlier globals.
        int_globals = [g for g in self.globals if isinstance(g.ty, IntType)]
        array_globals = [g for g in self.globals if isinstance(g.ty, ArrayType)]
        if int_globals and rng.random() < cfg.pointer_fraction * 2:
            target = rng.choice(int_globals)
            name = self._fresh("gp")
            ty = PointerType(target.ty)
            decls.append(
                ast.GlobalVar(name, ty, ast.AddrOf(ast.VarRef(target.name)), True)
            )
            self.globals.append(_GlobalSym(name, ty, True))
        n_funcs = rng.randint(cfg.min_functions, cfg.max_functions)
        for i in range(n_funcs):
            func = self._function(f"func_{i}")
            self.functions.append(func)
            decls.append(func)
        main = self._main()
        self.functions.append(main)
        decls.append(main)
        return ast.Program(decls)

    def _global(self) -> ast.GlobalVar:
        rng, cfg = self.rng, self.config
        name = self._fresh("g")
        static = rng.random() < cfg.static_fraction
        if rng.random() < cfg.array_fraction:
            elem = rng.choice((CHAR, SHORT, INT, INT, LONG))
            length = rng.randint(2, 6)
            uniform = rng.random() < 0.35
            if uniform:
                # Uniform arrays: every cell the same constant.  Loads
                # with unknown indices are still foldable — paper
                # Listing 9f / GCC bug #99419, which GCC misses.
                init = [self._small_const(elem)] * length
            else:
                init = [self._small_const(elem) for _ in range(length)]
            ty = ArrayType(elem, length)
            read_only = uniform and static and rng.random() < 0.7
            sym = _GlobalSym(name, ty, static, read_only=read_only)
            self.globals.append(sym)
            return ast.GlobalVar(name, ty, init, static)
        ty = rng.choice(_SCALAR_TYPES)
        init = self._small_const(ty) if rng.random() < 0.8 else None
        reset_only = static and rng.random() < 0.25
        sym = _GlobalSym(name, ty, static, reset_only)
        self.globals.append(sym)
        self._global_inits[name] = init if init is not None else 0
        return ast.GlobalVar(name, ty, init, static)

    def _small_const(self, ty: IntType) -> int:
        rng = self.rng
        choices = (0, 0, 0, 1, 1, 2, 3, 5, 7, 10, 100, -1, -2)
        value = rng.choice(choices)
        return max(ty.min_value, min(ty.max_value, value))

    # -- functions -----------------------------------------------------------

    def _function(self, name: str) -> ast.FuncDef:
        rng, cfg = self.rng, self.config
        n_params = rng.randint(0, 3)
        params = [
            ast.Param(self._fresh("p"), rng.choice((INT, INT, CHAR, UINT, LONG)))
            for _ in range(n_params)
        ]
        return_ty = rng.choice((INT, INT, LONG, SHORT))
        scope = _Scope()
        for p in params:
            scope.ints.append((p.name, p.ty))
        body = self._block(scope, depth=0, in_loop=False, return_ty=return_ty)
        body.stmts.append(ast.Return(self._int_expr(scope, 2)))
        return ast.FuncDef(name, return_ty, params, body, static=True)

    def _main(self) -> ast.FuncDef:
        scope = _Scope()
        body = self._block(scope, depth=0, in_loop=False, return_ty=INT)
        body.stmts.append(ast.Return(ast.IntLit(0)))
        return ast.FuncDef("main", INT, [], body, static=False)

    # -- statements --------------------------------------------------------------

    def _block(
        self, scope: _Scope, depth: int, in_loop: bool, return_ty: IntType
    ) -> ast.Block:
        rng, cfg = self.rng, self.config
        stmts: list[ast.Stmt] = []
        inner = _Scope(
            list(scope.ints), list(scope.pointers), list(scope.arrays),
            list(scope.counters), set(scope.protected),
        )
        n = rng.randint(cfg.min_block_stmts, cfg.max_block_stmts)
        for _ in range(n):
            stmts.append(self._statement(inner, depth, in_loop, return_ty))
        return ast.Block(stmts)

    def _statement(
        self, scope: _Scope, depth: int, in_loop: bool, return_ty: IntType
    ) -> ast.Stmt:
        rng, cfg = self.rng, self.config
        roll = rng.random()
        nested_ok = depth < cfg.max_depth
        if roll < 0.005 and nested_ok and not in_loop:
            return self._init_loop_then_check(scope, depth)
        if roll < 0.01 and not in_loop and self.functions:
            return self._cse_across_call(scope, depth)
        if roll < 0.15:
            return self._local_decl(scope)
        if roll < 0.45 or not nested_ok:
            extra = rng.random()
            if in_loop and extra < 0.06:
                return rng.choice((ast.Break(), ast.Continue()))
            if extra < cfg.call_fraction and self.functions and not in_loop:
                # Calls stay out of loop bodies: with an acyclic call
                # graph this bounds total work to a small polynomial.
                return self._call_stmt(scope)
            return self._assignment(scope)
        if roll < 0.75:
            return self._if(scope, depth, in_loop, return_ty)
        if roll < 0.75 + cfg.switch_fraction:
            return self._switch(scope, depth, return_ty)
        return self._loop(scope, depth, return_ty)

    def _local_decl(self, scope: _Scope) -> ast.Stmt:
        rng, cfg = self.rng, self.config
        name = self._fresh("l")
        roll = rng.random()
        if roll < cfg.pointer_fraction:
            target = self._pointer_target()
            if target is not None:
                ty, init = target
                scope.pointers.append((name, ty))
                return ast.VarDecl(name, ty, init)
        if roll < cfg.pointer_fraction + 0.15:
            elem = rng.choice((INT, SHORT, LONG))
            length = rng.randint(2, 4)
            ty = ArrayType(elem, length)
            init = [self._int_expr(scope, 1) for _ in range(length)]
            scope.arrays.append((name, ty))
            return ast.VarDecl(name, ty, init)
        ty = rng.choice(_SCALAR_TYPES)
        init = self._int_expr(scope, 2) if rng.random() < 0.8 else None
        scope.ints.append((name, ty))
        return ast.VarDecl(name, ty, init)

    def _init_loop_then_check(self, scope: _Scope, depth: int) -> ast.Stmt:
        """A counted loop filling an array with a constant, followed by
        a dead check on one cell (paper Listing 9e, GCC bug #99776).

        Any compiler that fully unrolls the loop and forwards the
        stores folds the check; a vectorizer that claims the loop
        first (trip >= its threshold) blocks exactly that.
        """
        rng = self.rng
        name = self._fresh("va")
        counter = self._fresh("i")
        length = rng.choice((2, 2, 3, 3, 4, 5))  # >=4 triggers the vectorizer
        value = rng.choice((0, 1, 5))
        ty = ArrayType(INT, length)
        # The declarations live inside the pattern's own block, so the
        # surrounding scope must not see them.
        scope = _Scope(
            list(scope.ints), list(scope.pointers),
            list(scope.arrays) + [(name, ty)],
            list(scope.counters), set(scope.protected),
        )
        fill = ast.For(
            ast.VarDecl(counter, INT, ast.IntLit(0)),
            ast.Binary("<", ast.VarRef(counter), ast.IntLit(length)),
            ast.Assign(ast.VarRef(counter), ast.IntLit(1), "+"),
            ast.Block([
                ast.Assign(ast.Index(ast.VarRef(name), ast.VarRef(counter)),
                           ast.IntLit(value)),
            ]),
        )
        check = ast.If(
            ast.Binary("!=", ast.Index(ast.VarRef(name), ast.IntLit(rng.randrange(length))),
                       ast.IntLit(value)),
            self._block(scope, depth + 1, False, INT),
        )
        return ast.Block([ast.VarDecl(name, ty, None), fill, check])

    def _cse_across_call(self, scope: _Scope, depth: int) -> ast.Stmt:
        """A load reused across a call: the dead check folds only when
        GVN may forward loads of non-escaping locals across call sites
        (the knob a paper-style 'compile-time' commit turns off)."""
        rng = self.rng
        arr = self._fresh("ca")
        saved = self._fresh("cv")
        ty = ArrayType(LONG, 2)
        # Initializers and call arguments use the *outer* scope; only
        # the check body may refer to the pattern's own names.
        init_exprs = [self._int_expr(scope, 1), self._int_expr(scope, 1)]
        callee = rng.choice(self.functions)
        self._call_counts[callee.name] = self._call_counts.get(callee.name, 0) + 1
        call = ast.ExprStmt(ast.Call(callee.name, [
            self._int_expr(scope, 1) for _ in callee.params
        ]))
        scope = _Scope(
            list(scope.ints) + [(saved, LONG)], list(scope.pointers),
            list(scope.arrays) + [(arr, ty)],
            list(scope.counters), set(scope.protected),
        )
        check = ast.If(
            ast.Binary("!=", ast.Index(ast.VarRef(arr), ast.IntLit(0)), ast.VarRef(saved)),
            self._block(scope, depth + 1, False, INT),
        )
        return ast.Block([
            ast.VarDecl(arr, ty, init_exprs),
            ast.VarDecl(saved, LONG, ast.Index(ast.VarRef(arr), ast.IntLit(0))),
            call,
            check,
        ])

    def _pointer_target(self) -> tuple[PointerType, ast.Expr] | None:
        """A pointer type + initializer aimed at global storage."""
        rng = self.rng
        int_globals = [
            g for g in self.globals
            if isinstance(g.ty, IntType) and not g.reset_only
        ]
        array_globals = [g for g in self.globals if isinstance(g.ty, ArrayType)]
        options = []
        if int_globals:
            options.append("scalar")
        if array_globals:
            options.append("element")
        if not options:
            return None
        if rng.choice(options) == "scalar":
            g = rng.choice(int_globals)
            return PointerType(g.ty), ast.AddrOf(ast.VarRef(g.name))
        g = rng.choice(array_globals)
        index = rng.randrange(g.ty.length)
        return (
            PointerType(g.ty.element),
            ast.AddrOf(ast.Index(ast.VarRef(g.name), ast.IntLit(index))),
        )

    def _assignment(self, scope: _Scope) -> ast.Stmt:
        rng = self.rng
        if rng.random() < 0.1:
            # Store a global's own initializer back into it ("resets"
            # Csmith emits naturally).  Such globals stay foldable
            # under a stored-init analysis (LLVM) but become opaque to
            # a readonly-only analysis (GCC) — paper Listing 4a.
            candidates = [
                g for g in self.globals
                if isinstance(g.ty, IntType) and g.static
            ]
            reset_candidates = [g for g in candidates if g.reset_only]
            if reset_candidates or candidates:
                g = rng.choice(reset_candidates or candidates)
                init = self._global_inits.get(g.name, 0)
                return ast.Assign(ast.VarRef(g.name), ast.IntLit(init))
        target = self._lvalue(scope)
        if target is None:
            return ast.ExprStmt(self._int_expr(scope, 1))
        lv, _ = target
        if rng.random() < 0.25:
            op = rng.choice(("+", "-", "^", "|", "&"))
            return ast.Assign(lv, self._int_expr(scope, 2), op)
        return ast.Assign(lv, self._int_expr(scope, self.config.max_expr_depth))

    def _lvalue(self, scope: _Scope) -> tuple[ast.Expr, IntType] | None:
        rng = self.rng
        options: list[tuple[ast.Expr, IntType]] = []
        writable_ints = [
            (n, t) for n, t in scope.ints if n not in scope.protected
        ]
        if writable_ints:
            n, t = rng.choice(writable_ints)
            options.append((ast.VarRef(n), t))
        int_globals = [
            g for g in self.globals
            if isinstance(g.ty, IntType) and not g.reset_only
        ]
        if int_globals:
            g = rng.choice(int_globals)
            options.append((ast.VarRef(g.name), g.ty))
        arrays = list(scope.arrays) + [
            (g.name, g.ty)
            for g in self.globals
            if isinstance(g.ty, ArrayType) and not g.read_only
        ]
        if arrays:
            name, ty = rng.choice(arrays)
            index = self._index_expr(scope, ty.length)
            options.append((ast.Index(ast.VarRef(name), index), ty.element))
        if scope.pointers and rng.random() < 0.4:
            name, ty = rng.choice(scope.pointers)
            options.append((ast.Deref(ast.VarRef(name)), ty.pointee))
        if not options:
            return None
        return rng.choice(options)

    def _index_expr(self, scope: _Scope, length: int) -> ast.Expr:
        """An always-in-bounds index expression."""
        rng = self.rng
        fitting = [(n, b) for n, b in scope.counters if b <= length]
        if fitting and rng.random() < 0.5:
            return ast.VarRef(rng.choice(fitting)[0])
        return ast.IntLit(rng.randrange(length))

    def _call_stmt(self, scope: _Scope) -> ast.Stmt:
        """Call a generated function.  Csmith-style: the call graph is
        a tree-ish DAG where most functions have a single call site,
        which is what makes whole-program inlining (and hence deep
        constant folding) possible for real compilers."""
        rng = self.rng
        candidates = [
            f for f in self.functions if self._call_counts.get(f.name, 0) < 2
        ]
        if not candidates:
            return self._assignment(scope)
        never_called = [f for f in candidates if f.name not in self._call_counts]
        callee = rng.choice(never_called or candidates)
        self._call_counts[callee.name] = self._call_counts.get(callee.name, 0) + 1
        args = [self._int_expr(scope, 2) for _ in callee.params]
        call = ast.Call(callee.name, args)
        if rng.random() < 0.5:
            target = self._lvalue(scope)
            if target is not None:
                return ast.Assign(target[0], call)
        return ast.ExprStmt(call)

    def _if(self, scope, depth, in_loop, return_ty) -> ast.Stmt:
        rng, cfg = self.rng, self.config
        cond = self._condition(scope)
        then = self._block(scope, depth + 1, in_loop, return_ty)
        if rng.random() < cfg.early_return_fraction:
            then.stmts.append(ast.Return(self._int_expr(scope, 1)))
        els = None
        if rng.random() < cfg.else_fraction:
            els = self._block(scope, depth + 1, in_loop, return_ty)
        return ast.If(cond, then, els)

    def _switch(self, scope, depth, return_ty) -> ast.Stmt:
        rng = self.rng
        scrutinee = self._int_expr(scope, 2)
        if rng.random() < 0.6:
            # A masked scrutinee makes out-of-range arms provably dead.
            scrutinee = ast.Binary("&", scrutinee, ast.IntLit(rng.choice((3, 7))))
        n_cases = rng.randint(1, 4)
        values = rng.sample(range(-2, 12), n_cases)
        cases = [
            ast.SwitchCase(v, self._block(scope, depth + 1, False, return_ty))
            for v in values
        ]
        if rng.random() < 0.6:
            cases.append(
                ast.SwitchCase(None, self._block(scope, depth + 1, False, return_ty))
            )
        return ast.Switch(scrutinee, cases)

    def _loop(self, scope, depth, return_ty) -> ast.Stmt:
        rng, cfg = self.rng, self.config
        kind = rng.random()
        counter = self._fresh("i")
        trip_choices = [0, 1, 2, 2, 3, 4, 5, 8, cfg.max_loop_trip]
        trip = rng.choice(trip_choices)
        inner = _Scope(
            list(scope.ints), list(scope.pointers), list(scope.arrays),
            list(scope.counters), set(scope.protected),
        )
        inner.ints.append((counter, INT))
        inner.counters.append((counter, max(trip, 1)))
        inner.protected.add(counter)
        if kind < 0.6:
            body = self._block(inner, depth + 1, True, return_ty)
            return ast.For(
                ast.VarDecl(counter, INT, ast.IntLit(0)),
                ast.Binary("<", ast.VarRef(counter), ast.IntLit(trip)),
                ast.Assign(ast.VarRef(counter), ast.IntLit(1), "+"),
                body,
            )
        # while/do-while keep their counter update inside the body, so
        # their bodies must not contain 'continue' (it would skip the
        # update): generate the body with loop jumps disabled.
        body = self._block(inner, depth + 1, False, return_ty)
        if kind < 0.85:
            body.stmts.append(ast.Assign(ast.VarRef(counter), ast.IntLit(1), "-"))
            loop = ast.While(ast.Binary(">", ast.VarRef(counter), ast.IntLit(0)), body)
            return ast.Block([ast.VarDecl(counter, INT, ast.IntLit(trip)), loop])
        body.stmts.append(ast.Assign(ast.VarRef(counter), ast.IntLit(1), "+"))
        loop = ast.DoWhile(body, ast.Binary("<", ast.VarRef(counter), ast.IntLit(trip)))
        return ast.Block([ast.VarDecl(counter, INT, ast.IntLit(0)), loop])

    # -- expressions ----------------------------------------------------------------

    def _condition(self, scope: _Scope) -> ast.Expr:
        rng, cfg = self.rng, self.config
        if scope.pointers and rng.random() < 0.1:
            name, ty = rng.choice(scope.pointers)
            other = self._pointer_target()
            if other is not None and other[0] == ty:
                return ast.Binary(rng.choice(("==", "!=")), ast.VarRef(name), other[1])
        if rng.random() < cfg.dead_bias:
            return self._dead_condition(scope)
        roll = rng.random()
        if roll < 0.3:
            # Provably-true shapes: their *else* arms are provably dead.
            mask = rng.choice((3, 7, 15, 31))
            expr = ast.Binary("&", self._int_expr(scope, 2), ast.IntLit(mask))
            return ast.Binary("<=", expr, ast.IntLit(mask + rng.randint(0, 4)))
        if roll < 0.65:
            return ast.Binary(
                rng.choice(_CMP_OPS), self._int_expr(scope, 2), self._int_expr(scope, 2)
            )
        if roll < 0.85:
            return ast.Binary(
                rng.choice(("&&", "||")), self._condition_leaf(scope), self._condition_leaf(scope)
            )
        return self._condition_leaf(scope)

    def _dead_condition(self, scope: _Scope) -> ast.Expr:
        """An always/usually-false condition.

        Csmith-style dead code is mostly *statically* dead: value
        ranges, masked values, and constant arithmetic prove the
        branch never fires.  A tail of shapes is only *dynamically*
        dead — those are the residual misses that make the corpus
        interesting (paper §4.1: even at -O3 a few percent survive).
        """
        rng = self.rng
        shape = rng.random()
        if shape < 0.04:
            # Comparing addresses of distinct objects: always false,
            # but only foldable under the stronger addr-compare rule
            # (paper Listing 3 — LLVM's EarlyCSE misses index != 0).
            left = self._pointer_target()
            right = self._pointer_target()
            if left is not None and right is not None and left[1] is not right[1]:
                if _addr_key(left[1]) != _addr_key(right[1]):
                    return ast.Binary("==", left[1], right[1])
        if shape < 0.30:
            # Masked value vs out-of-range constant: VRP folds it.
            mask = rng.choice((1, 3, 7, 15, 31))
            expr = ast.Binary("&", self._int_expr(scope, 2), ast.IntLit(mask))
            return ast.Binary(">", expr, ast.IntLit(mask + rng.randint(1, 9)))
        if shape < 0.50:
            # Narrow-typed value vs a threshold outside its type range.
            expr = ast.Cast(rng.choice((CHAR, UCHAR, SHORT)), self._int_expr(scope, 2))
            threshold = rng.choice((1 << 16, 1 << 20, 70000))
            return ast.Binary(">", expr, ast.IntLit(threshold))
        if shape < 0.63:
            # Remainder range: (x % k) can never reach k or beyond.
            k = rng.randint(2, 9)
            expr = ast.Binary("%", self._int_expr(scope, 2), ast.IntLit(k))
            return ast.Binary(rng.choice((">", "==")), expr, ast.IntLit(k + rng.randint(0, 5)))
        if shape < 0.82:
            # Constant arithmetic: front ends fold the literal-only
            # half even at -O0; the variants with a zero-absorbed
            # variable need real algebraic simplification (-O1+).
            a, b = rng.randint(-20, 20), rng.randint(1, 20)
            lhs: ast.Expr = ast.Binary(
                rng.choice(("+", "*", "^")), ast.IntLit(a), ast.IntLit(b)
            )
            if rng.random() < 0.55:
                absorbed = ast.Binary("*", self._int_expr(scope, 1), ast.IntLit(0))
                lhs = ast.Binary("+", lhs, absorbed)
            wrong = ast.IntLit(a + b + rng.choice((1, 2, 5)) if rng.random() < 0.5 else 10_000)
            cond = ast.Binary("==", lhs, wrong)
            if rng.random() < 0.4:
                # ... sometimes guarded behind a live-looking operand.
                return ast.Binary("&&", cond, self._condition_leaf(scope))
            return cond
        # The "hard" tail: dynamically dead, statically unprovable.
        lhs = self._int_expr(scope, 2)
        if shape < 0.91:
            return ast.Binary("==", lhs, ast.IntLit(rng.choice((9, 13, 77, -5, 1000))))
        if shape < 0.96:
            return ast.Binary(">", lhs, ast.IntLit(rng.choice((500, 1 << 12, 1 << 20))))
        return ast.Binary("<", lhs, ast.IntLit(rng.choice((-600, -(1 << 13)))))

    def _condition_leaf(self, scope: _Scope) -> ast.Expr:
        rng = self.rng
        expr = self._int_expr(scope, 1)
        if rng.random() < 0.3:
            return ast.Unary("!", expr)
        return expr

    def _int_expr(self, scope: _Scope, depth: int) -> ast.Expr:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self._int_leaf(scope)
        roll = rng.random()
        if roll < 0.12:
            return ast.Unary(rng.choice(("-", "~", "!")), self._int_expr(scope, depth - 1))
        if roll < 0.2:
            ty = rng.choice(_SCALAR_TYPES)
            return ast.Cast(ty, self._int_expr(scope, depth - 1))
        op = rng.choice(_BIN_OPS + _CMP_OPS)
        return ast.Binary(op, self._int_expr(scope, depth - 1), self._int_expr(scope, depth - 1))

    def _int_leaf(self, scope: _Scope) -> ast.Expr:
        rng = self.rng
        options = []
        if scope.ints:
            options.append("local")
        int_globals = [g for g in self.globals if isinstance(g.ty, IntType)]
        if int_globals:
            options.append("global")
        arrays = list(scope.arrays) + [
            (g.name, g.ty) for g in self.globals if isinstance(g.ty, ArrayType)
        ]
        if arrays:
            options.append("element")
        if scope.pointers:
            options.append("deref")
        options.append("const")
        choice = rng.choice(options)
        if choice == "local":
            return ast.VarRef(rng.choice(scope.ints)[0])
        if choice == "global":
            return ast.VarRef(rng.choice(int_globals).name)
        if choice == "element":
            name, ty = rng.choice(arrays)
            return ast.Index(ast.VarRef(name), self._index_expr(scope, ty.length))
        if choice == "deref":
            return ast.Deref(ast.VarRef(rng.choice(scope.pointers)[0]))
        return ast.IntLit(rng.choice((0, 1, 2, 3, 4, 6, 9, 12, 100, 255, -1, -7)))
