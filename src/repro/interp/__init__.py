"""Reference execution of MiniC programs (the ground-truth oracle).

This package is the single public surface for program execution.  Two
backends produce bit-identical :class:`ExecutionResult` values:

* ``"bytecode"`` (default) — :mod:`.bytecode` compiles the checked AST
  to flat bytecode and runs it on a dispatch-loop VM; several times
  faster than the tree walker.
* ``"ast"`` — :mod:`.interpreter`, the ~600-line tree-walking reference
  interpreter the bytecode engine is validated against.

:func:`run_program` dispatches on its ``backend`` argument, falling
back to the process-wide default (:func:`set_default_backend`, which
``--no-bytecode`` flips to ``"ast"``).
"""

from .interpreter import (
    DEFAULT_STEP_LIMIT,
    Address,
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
    call_observation,
    pointer_cell_hash,
)
from .interpreter import run_program as _run_ast
from .bytecode import run_program as _run_bytecode

BACKENDS = ("bytecode", "ast")

_default_backend = "bytecode"


def get_default_backend() -> str:
    """The backend ``run_program`` uses when none is requested."""
    return _default_backend


def set_default_backend(name: str) -> None:
    """Set the process-wide default interpreter backend."""
    if name not in BACKENDS:
        raise ValueError(f"unknown interpreter backend {name!r}")
    global _default_backend
    _default_backend = name


def run_program(
    program,
    step_limit: int = DEFAULT_STEP_LIMIT,
    info=None,
    backend: str | None = None,
) -> ExecutionResult:
    """Execute ``program`` from ``main`` on the selected backend.

    Both backends return bit-identical results (checksum, call trace,
    marker hits, step count, exit code); the property suite
    ``tests/property/test_bytecode_equivalence.py`` enforces this.
    """
    if backend is None:
        backend = _default_backend
    if backend == "bytecode":
        return _run_bytecode(program, step_limit=step_limit, info=info)
    if backend == "ast":
        return _run_ast(program, step_limit=step_limit, info=info)
    raise ValueError(f"unknown interpreter backend {backend!r}")


__all__ = [
    "BACKENDS",
    "DEFAULT_STEP_LIMIT",
    "Address",
    "ExecutionResult",
    "InterpreterError",
    "StepLimitExceeded",
    "call_observation",
    "get_default_backend",
    "pointer_cell_hash",
    "run_program",
    "set_default_backend",
]
