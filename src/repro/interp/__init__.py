"""Reference execution of MiniC programs (the ground-truth oracle)."""

from .interpreter import (
    DEFAULT_STEP_LIMIT,
    Address,
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
    run_program,
)

__all__ = [
    "DEFAULT_STEP_LIMIT",
    "Address",
    "ExecutionResult",
    "InterpreterError",
    "StepLimitExceeded",
    "run_program",
]
