"""MiniC bytecode compiler + VM: the ground-truth fast path.

Compiles a checked MiniC AST into flat bytecode — one linear
instruction array per function with precomputed jump targets — and
executes it on a dispatch-loop VM.  The result is **bit-identical** to
the tree-walking reference interpreter (:mod:`.interpreter`): same
``checksum``, ``call_trace``, ``marker_hits``, ``function_calls``,
``exit_code``, and the same ``steps`` total with the same
:class:`StepLimitExceeded` / :func:`repro.budget.check_deadline`
semantics.  The property suite
(``tests/property/test_bytecode_equivalence.py``) proves the
equivalence over generated corpora; campaigns run this backend by
default (``--no-bytecode`` falls back to the AST walker).

Where the speed comes from:

* no per-node recursive ``_eval`` dispatch — one flat ``while`` loop
  over instruction tuples;
* no ``_BreakSignal``/``_ContinueSignal``/``_ReturnSignal``
  exceptions — ``break``/``continue``/``return`` compile to jumps and
  a plain function return;
* slot-indexed locals instead of dict-keyed frames — locals whose
  address is never taken live directly in a slot list;
* interned constants and compile-time type analysis — ``wrap``
  boundaries the AST interpreter re-derives per evaluation (integer
  promotions, usual arithmetic conversions, no-op truncations) are
  resolved once at compile time and skipped when statically redundant;
* merged step ticks — consecutive interpreter ticks inside a
  straight-line region collapse into one ``TICK n`` instruction
  (flushed at every branch, label, and call boundary, so the step
  total along every execution path — and therefore step-limit and
  budget behaviour — is exactly the AST interpreter's).

Step accounting contract: the AST interpreter ticks once per statement,
once per expression-node evaluation, once per lvalue computation, and
once per loop iteration, raising once ``steps`` exceeds the limit and
polling the cooperative deadline every 2048 steps.  The compiler
mirrors each of those tick sites; merging only moves ticks *within*
regions whose intermediate states are unobservable, so totals at every
observable event (opaque calls, function boundaries, exit) match.

One deliberate divergence: the AST interpreter frees a frame's storage
objects on function exit, so dereferencing a dangling pointer to a
dead local raises; the VM keeps storage alive while referenced.
MiniC's checker does not reject such programs, but the generator never
produces them and translation-validation tests would flag one.
"""

from __future__ import annotations

from ..budget import check_deadline
from ..frontend.typecheck import SymbolInfo, check_program
from ..lang import ast_nodes as ast
from ..lang.semantics import wrap
from ..observability.tracer import current_tracer
from ..lang.types import (
    INT,
    ArrayType,
    IntType,
    PointerType,
    promote,
    usual_arithmetic_conversion,
)
from .interpreter import (
    DEFAULT_STEP_LIMIT,
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
    pointer_cell_hash,
)

_U64 = 0xFFFFFFFFFFFFFFFF

# -- opcodes ---------------------------------------------------------------
# Numbered roughly by dispatch frequency; the VM's if/elif ladder tests
# them in this order.

(
    OP_TICK,        # (n,)                steps += n, limit + deadline
    OP_LOAD_FAST,   # (slot,)             push slot value
    OP_PUSH,        # (const,)            push constant
    OP_WRAP,        # (mask, maxv, mod)   two's-complement truncate top
    OP_JF,          # (target,)           pop; jump when falsy
    OP_STORE_FAST,  # (slot,)             slot = pop
    OP_LOAD_G,      # (store,)            push global cells[0]
    OP_STORE_G,     # (store,)            global cells[0] = pop
    OP_ADD,         # (mask, maxv, mod)
    OP_SUB,
    OP_MUL,
    OP_LOADIDX_G,   # (store,)            idx = pop; push cells[idx % len]
    OP_STOREIDX_G,  # (store,)            v = pop; idx = pop; store
    OP_JUMP,        # (target,)
    OP_EQ,
    OP_NE,
    OP_LT,
    OP_LE,
    OP_GT,
    OP_GE,
    OP_BAND,
    OP_BOR,
    OP_BXOR,
    OP_SHL,         # (mask, maxv, mod, smask)
    OP_SHR,
    OP_DIV,         # (mask, maxv, mod)
    OP_REM,
    OP_NEG,
    OP_BNOT,
    OP_LNOT,
    OP_JT,
    OP_LOAD_L,      # (slot,)             push celled-local cells[0]
    OP_STORE_L,
    OP_LOADIDX_L,   # (slot,)
    OP_STOREIDX_L,
    OP_ADDR_G,      # (store, index)      push address tuple
    OP_ADDR_L,      # (slot, index)
    OP_IDX_G,       # (store,)            idx = pop; push (store, idx % len)
    OP_IDX_L,       # (slot,)
    OP_IDX_PTR,     # ()                  ptr = pop; idx = pop
    OP_LOAD_AT,     # ()                  addr = pop; push cell
    OP_STORE_AT,    # ()                  v = pop; addr = pop
    OP_DUP,
    OP_POP,
    OP_PEQ,
    OP_PNE,
    OP_SWITCH,      # (table, default)
    OP_CALL,        # (fn, nargs)
    OP_CALL_OP,     # (name, acc0, nargs, returns_int)
    OP_DECL_FAST,   # (slot,)             slot = pop; created += 1
    OP_DECL_FAST_K, # (slot, const)
    OP_DECL_CELL,   # (slot, name, element)
    OP_DECL_CELL_K, # (slot, name, element, const)
    OP_DECL_ARR,    # (slot, name, element, length, ninit)
    OP_RET,         # ()                  return pop
    OP_RET_NONE,    # ()
) = range(56)


class _Cells:
    """One storage object: a boxed list of integer cells.

    Pointer values are ``(storage, index)`` tuples; tuple equality then
    matches the AST interpreter's object-id string equality because
    every storage creation gets a unique id.  ``hash_base`` is the
    precomputed 32-bit FNV of a *global*'s object id (``None`` marks a
    local, whose pointer observations hash to the fixed local tag).
    """

    __slots__ = ("element", "cells", "object_id", "hash_base")

    def __init__(self, element, cells, object_id, hash_base=None):
        self.element = element
        self.cells = cells
        self.object_id = object_id
        self.hash_base = hash_base


def _fnv32(object_id: str) -> int:
    acc = 0x811C9DC5
    for byte in object_id.encode():
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc


class _Fn:
    """One compiled function: flat code + frame layout.

    Bodies compile lazily on first call (``code`` is ``None`` until
    then): DCE-hunt corpora are full of dead code, and typically fewer
    than half the defined functions ever execute, so eager compilation
    would spend most of its time on bodies the VM never enters.
    """

    __slots__ = (
        "name", "code", "nslots", "params", "returns_int", "needs_ids",
        "image", "func",
    )

    def __init__(self, name, image, func):
        self.name = name
        self.code = None
        self.nslots = 0
        #: (slot, celled, element, name) per parameter
        self.params = ()
        self.returns_int = False
        #: whether any storage object is created per activation (only
        #: then does the frame need its object-id prefix string)
        self.needs_ids = False
        self.image = image
        self.func = func


class _Image:
    """A compiled program: globals storage + compiled functions."""

    __slots__ = ("fns", "globals_order", "globals_map", "info")

    def __init__(self, info):
        self.fns = {}
        #: non-static globals' storage, declaration order (checksum)
        self.globals_order = []
        self.globals_map = {}
        self.info = info


# -- compiler --------------------------------------------------------------


_FITS = object()  # sentinel: value statically fits any integer type


def _wrap_is_noop(src: IntType, dst: IntType) -> bool:
    """Whether ``wrap(v, dst)`` is the identity for every ``v`` already
    wrapped to ``src`` (same type, same-signedness widening, or
    unsigned-to-strictly-wider)."""
    if src.width < dst.width:
        return src.signed == dst.signed or not src.signed
    return src.width == dst.width and src.signed == dst.signed


_UAC_MEMO: dict = {}


def _uac(a: IntType, b: IntType) -> IntType:
    """Memoized ``usual_arithmetic_conversion`` — the compiler asks for
    the same handful of type pairs tens of thousands of times."""
    key = (a.width, a.signed, b.width, b.signed)
    ty = _UAC_MEMO.get(key)
    if ty is None:
        ty = _UAC_MEMO[key] = usual_arithmetic_conversion(a, b)
    return ty


def _collect_addrof(body, names: set) -> None:
    """Names whose address is taken anywhere in ``body`` (conservative:
    name-based, so any same-named declaration becomes storage-backed).
    Iterative — this prepass visits every node of every function, so it
    must stay cheap relative to one execution."""
    stack = [body]
    push = stack.append
    pop = stack.pop
    while stack:
        node = pop()
        cls = node.__class__
        if cls is ast.IntLit or cls is ast.VarRef:
            continue
        if cls is ast.Binary:
            push(node.lhs)
            push(node.rhs)
        elif cls is ast.Block:
            stack.extend(node.stmts)
        elif cls is ast.Assign:
            push(node.target)
            push(node.value)
        elif cls is ast.ExprStmt:
            push(node.expr)
        elif cls is ast.Index:
            push(node.base)
            push(node.index)
        elif cls is ast.Call:
            stack.extend(node.args)
        elif cls is ast.AddrOf:
            lv = node.lvalue
            if lv.__class__ is ast.VarRef:
                names.add(lv.name)
            push(lv)
        elif cls is ast.If:
            push(node.cond)
            push(node.then)
            if node.els is not None:
                push(node.els)
        elif cls is ast.While or cls is ast.DoWhile:
            push(node.cond)
            push(node.body)
        elif cls is ast.For:
            for child in (node.init, node.cond, node.body, node.step):
                if child is not None:
                    push(child)
        elif cls is ast.Switch:
            push(node.scrutinee)
            for case in node.cases:
                push(case.body)
        elif cls is ast.Return:
            if node.value is not None:
                push(node.value)
        elif cls is ast.VarDecl:
            init = node.init
            if isinstance(init, ast.Expr):
                push(init)
            elif isinstance(init, list):
                stack.extend(init)
        elif cls is ast.Deref:
            push(node.pointer)
        elif cls is ast.Unary or cls is ast.Cast:
            push(node.operand)


class _Label:
    __slots__ = ("pos",)

    def __init__(self):
        self.pos = None


_BINOP_CODES = {
    "+": OP_ADD, "-": OP_SUB, "*": OP_MUL, "/": OP_DIV, "%": OP_REM,
    "&": OP_BAND, "|": OP_BOR, "^": OP_BXOR, "<<": OP_SHL, ">>": OP_SHR,
    "==": OP_EQ, "!=": OP_NE, "<": OP_LT, "<=": OP_LE,
    ">": OP_GT, ">=": OP_GE,
}

_JUMP_OPS = frozenset((OP_JUMP, OP_JF, OP_JT))


class _FnCompiler:
    def __init__(self, fn):
        image = fn.image
        self.image = image
        self.globals_map = image.globals_map
        self.info = image.info
        self.fn = fn
        func = self.func = fn.func
        self.code = []          # mutable instruction lists
        self.pending = 0        # merged ticks awaiting flush
        # Flat name → binding map with per-scope undo logs (cheaper
        # than walking a scope-dict chain on every variable reference).
        self.bindings = {}
        self.undo = []
        self.nslots = 0
        self.breaks = []
        self.conts = []
        self.addrof = set()
        _collect_addrof(func.body, self.addrof)

    # -- emission helpers --------------------------------------------------

    def _tick(self, n: int = 1) -> None:
        self.pending += n

    def _flush(self) -> None:
        if self.pending:
            self.code.append([OP_TICK, self.pending])
            self.pending = 0

    def _op(self, *parts) -> list:
        ins = list(parts)
        self.code.append(ins)
        return ins

    def _mark(self, label: _Label) -> None:
        self._flush()
        label.pos = len(self.code)

    def _jump(self, op: int, label: _Label) -> None:
        self._flush()
        self.code.append([op, label])

    def _alloc(self) -> int:
        slot = self.nslots
        self.nslots += 1
        return slot

    def _lookup(self, name: str):
        binding = self.bindings.get(name)
        if binding is not None:
            return binding
        store = self.globals_map.get(name)
        if store is not None:
            return ("global", store)
        raise InterpreterError(f"no storage for {name}")

    def _bind(self, name: str, binding) -> None:
        self.undo[-1].append((name, self.bindings.get(name)))
        self.bindings[name] = binding

    def _push_scope(self) -> None:
        self.undo.append([])

    def _pop_scope(self) -> None:
        bindings = self.bindings
        for name, old in reversed(self.undo.pop()):
            if old is None:
                del bindings[name]
            else:
                bindings[name] = old

    # -- driver ------------------------------------------------------------

    def compile(self) -> None:
        fn, func = self.fn, self.func
        params = []
        self._push_scope()
        for p in func.params:
            slot = self._alloc()
            celled = p.name in self.addrof
            element = p.ty if isinstance(p.ty, IntType) else p.ty.pointee
            params.append((slot, celled, element, p.name))
            self._bind(p.name, ("cell" if celled else "fast", slot))
            if celled:
                fn.needs_ids = True
        self._block(func.body)
        self._flush()
        self._op(OP_RET_NONE)
        fn.params = tuple(params)
        fn.nslots = self.nslots
        fn.returns_int = isinstance(func.return_ty, IntType)
        fn.code = self._finalize()

    def _finalize(self) -> tuple:
        # Instructions stay as lists (indexing cost is identical and it
        # skips a full re-allocation pass); only jump targets and
        # switch tables need label resolution.
        for ins in self.code:
            op = ins[0]
            if op in _JUMP_OPS:
                ins[1] = ins[1].pos
            elif op == OP_SWITCH:
                ins[1] = {v: lbl.pos for v, lbl in ins[1].items()}
                ins[2] = ins[2].pos
        return tuple(self.code)

    # -- statements --------------------------------------------------------

    def _block(self, block: ast.Block) -> None:
        """A block body (no tick: mirrors ``_exec_block``)."""
        self._push_scope()
        for stmt in block.stmts:
            self._stmt(stmt)
        self._pop_scope()

    def _stmt(self, stmt) -> None:
        self._tick()  # _exec_stmt ticks at every statement entry
        cls = stmt.__class__
        if cls is ast.Assign:
            self._assign(stmt)
        elif cls is ast.ExprStmt:
            self._expr(stmt.expr)
            self._op(OP_POP)
        elif cls is ast.VarDecl:
            self._decl(stmt)
        elif cls is ast.If:
            self._expr(stmt.cond)
            after = _Label()
            if stmt.els is None:
                self._jump(OP_JF, after)
                self._block(stmt.then)
            else:
                els = _Label()
                self._jump(OP_JF, els)
                self._block(stmt.then)
                self._jump(OP_JUMP, after)
                self._mark(els)
                self._block(stmt.els)
            self._mark(after)
        elif cls is ast.While:
            cond, end = _Label(), _Label()
            self._mark(cond)
            self._expr(stmt.cond)
            self._jump(OP_JF, end)
            self._tick()  # per-iteration tick before the body
            self.breaks.append(end)
            self.conts.append(cond)
            self._block(stmt.body)
            self.breaks.pop()
            self.conts.pop()
            self._jump(OP_JUMP, cond)
            self._mark(end)
        elif cls is ast.DoWhile:
            top, cont, end = _Label(), _Label(), _Label()
            self._mark(top)
            self._tick()  # per-iteration tick before the body
            self.breaks.append(end)
            self.conts.append(cont)
            self._block(stmt.body)
            self.breaks.pop()
            self.conts.pop()
            self._mark(cont)
            self._expr(stmt.cond)
            self._jump(OP_JT, top)
            self._mark(end)
        elif cls is ast.For:
            self._for(stmt)
        elif cls is ast.Switch:
            self._switch(stmt)
        elif cls is ast.Return:
            if stmt.value is None:
                self._flush()
                self._op(OP_RET_NONE)
            else:
                self._expr(stmt.value)
                self._flush()
                self._op(OP_RET)
        elif cls is ast.Break:
            self._jump(OP_JUMP, self.breaks[-1])
        elif cls is ast.Continue:
            self._jump(OP_JUMP, self.conts[-1])
        elif cls is ast.Block:
            self._block(stmt)
        else:
            raise InterpreterError(f"unknown statement {stmt!r}")

    def _for(self, stmt: ast.For) -> None:
        self._push_scope()  # init declarations scope the whole loop
        if stmt.init is not None:
            self._stmt(stmt.init)
        cond, cont, end = _Label(), _Label(), _Label()
        self._mark(cond)
        if stmt.cond is not None:
            self._expr(stmt.cond)
            self._jump(OP_JF, end)
        self._tick()  # per-iteration tick before the body
        self.breaks.append(end)
        self.conts.append(cont)
        self._block(stmt.body)
        self.breaks.pop()
        self.conts.pop()
        self._mark(cont)
        if stmt.step is not None:
            self._stmt(stmt.step)
        self._jump(OP_JUMP, cond)
        self._mark(end)
        self._pop_scope()

    def _switch(self, stmt: ast.Switch) -> None:
        self._expr(stmt.scrutinee)
        self._flush()
        table: dict = {}
        labels = []
        default = _Label()
        end = _Label()
        default_body = None
        for case in stmt.cases:
            if case.value is None:
                default_body = case  # last default wins, like the AST walk
            elif case.value not in table:  # first matching case wins
                label = _Label()
                table[case.value] = label
                labels.append((label, case))
        self._op(OP_SWITCH, table, default)
        for label, case in labels:
            self._mark(label)
            self.breaks.append(end)
            self._block(case.body)
            self.breaks.pop()
            self._jump(OP_JUMP, end)
        self._mark(default)
        if default_body is not None:
            self.breaks.append(end)
            self._block(default_body.body)
            self.breaks.pop()
        self._mark(end)

    def _decl(self, stmt: ast.VarDecl) -> None:
        ty = stmt.ty
        slot = self._alloc()
        if isinstance(ty, ArrayType):
            ninit = 0
            if isinstance(stmt.init, list):
                for e in stmt.init:
                    st = self._expr(e)
                    self._emit_wrap(ty.element, e, st)
                ninit = len(stmt.init)
            self._op(OP_DECL_ARR, slot, stmt.name, ty.element, ty.length, ninit)
            self.fn.needs_ids = True
            kind = "cell"
        else:
            celled = stmt.name in self.addrof
            if isinstance(ty, IntType):
                element, default = ty, 0
                init = stmt.init if isinstance(stmt.init, ast.Expr) else None
                wrap_to = ty
            elif isinstance(ty, PointerType):
                element, default = ty.pointee, None
                init = stmt.init if isinstance(stmt.init, ast.Expr) else None
                wrap_to = None
            else:
                raise InterpreterError(f"bad local type {ty}")
            if init is not None:
                st = self._expr(init)
                if wrap_to is not None:
                    self._emit_wrap(wrap_to, init, st)
                if celled:
                    self._op(OP_DECL_CELL, slot, stmt.name, element)
                else:
                    self._op(OP_DECL_FAST, slot)
            else:
                if celled:
                    self._op(OP_DECL_CELL_K, slot, stmt.name, element, default)
                else:
                    self._op(OP_DECL_FAST_K, slot, default)
            if celled:
                self.fn.needs_ids = True
            kind = "cell" if celled else "fast"
        self._bind(stmt.name, (kind, slot))

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        target_ty = target.ty
        # Fused paths for variable and array-element targets skip the
        # address-tuple round trip; each still accounts the
        # _lvalue_address tick.
        if isinstance(target, ast.VarRef):
            kind, where = self._lookup(target.name)
            self._tick()  # _lvalue_address
            load, store = {
                "fast": (OP_LOAD_FAST, OP_STORE_FAST),
                "cell": (OP_LOAD_L, OP_STORE_L),
                "global": (OP_LOAD_G, OP_STORE_G),
            }[kind]
            if stmt.op:
                self._compound(stmt, lambda: self._op(load, where))
            else:
                st = self._expr(stmt.value)
                if target_ty.__class__ is IntType:
                    self._emit_wrap(target_ty, stmt.value, st)
            self._op(store, where)
            return
        if (
            not stmt.op
            and isinstance(target, ast.Index)
            and isinstance(target.base, ast.VarRef)
            and isinstance(target.base.ty, ArrayType)
        ):
            # idx stays raw on the stack while the value evaluates
            # (address formation is pure, so the reorder is safe)
            self._tick()  # _lvalue_address
            self._expr(target.index)
            kind, where = self._lookup(target.base.name)
            st = self._expr(stmt.value)
            if target_ty.__class__ is IntType:
                self._emit_wrap(target_ty, stmt.value, st)
            self._op(
                OP_STOREIDX_G if kind == "global" else OP_STOREIDX_L, where
            )
            return
        self._lvalue(target)
        if stmt.op:
            self._op(OP_DUP)
            self._op(OP_LOAD_AT)
            self._compound(stmt, None)
        else:
            st = self._expr(stmt.value)
            if target_ty.__class__ is IntType:
                self._emit_wrap(target_ty, stmt.value, st)
        self._op(OP_STORE_AT)

    def _compound(self, stmt: ast.Assign, load_old) -> None:
        """Old value → common, rhs → common, binop, result → target.
        ``load_old`` emits the old-value load (already on the stack for
        the address path)."""
        target_ty = stmt.target.ty
        common = _uac(target_ty, stmt.value.ty)
        if load_old is not None:
            load_old()
        if not _wrap_is_noop(target_ty, common):
            self._emit_wrap_op(common)
        st = self._expr(stmt.value)
        self._emit_wrap(common, stmt.value, st)
        result_st = self._binop_op(stmt.op, common)
        if result_st is not _FITS and not _wrap_is_noop(common, target_ty):
            self._emit_wrap_op(target_ty)

    # -- expressions -------------------------------------------------------

    def _expr(self, e):
        """Compile ``e``; returns the type its runtime value is
        statically wrapped to (``_FITS`` for 0/1-valued results,
        ``None`` when unknown or non-integer) so callers can elide
        redundant truncations."""
        self._tick()  # _eval ticks at every expression node
        cls = e.__class__
        if cls is ast.IntLit:
            self._op(OP_PUSH, e.value)
            return None  # _emit_wrap special-cases literal operands
        if cls is ast.VarRef:
            ty = e.ty
            if ty.__class__ is ArrayType:  # decay to &base[0]
                kind, where = self._lookup(e.name)
                self._op(
                    OP_ADDR_G if kind == "global" else OP_ADDR_L, where, 0
                )
                return None
            kind, where = self._lookup(e.name)
            if kind == "fast":
                self._op(OP_LOAD_FAST, where)
            elif kind == "cell":
                self._op(OP_LOAD_L, where)
            else:
                self._op(OP_LOAD_G, where)
            return ty if ty.__class__ is IntType else None
        if cls is ast.Binary:
            return self._binary(e)
        if cls is ast.Index or cls is ast.Deref:
            self._lvalue(e)
            self._load_at()
            ty = e.ty
            return ty if ty.__class__ is IntType else None
        if cls is ast.Call:
            return self._call(e)
        if cls is ast.Unary:
            st = self._expr(e.operand)
            if e.op == "!":
                self._op(OP_LNOT)
                return _FITS
            promoted = promote(e.operand.ty)
            self._emit_wrap(promoted, e.operand, st)
            self._op(OP_NEG if e.op == "-" else OP_BNOT, *_wrap_args(promoted))
            return promoted
        if cls is ast.Cast:
            st = self._expr(e.operand)
            self._emit_wrap(e.target, e.operand, st)
            return e.target
        if cls is ast.AddrOf:
            self._lvalue(e.lvalue)
            return None
        raise InterpreterError(f"unknown expression {e!r}")

    def _binary(self, e: ast.Binary):
        op = e.op
        if op == "&&":
            false, end = _Label(), _Label()
            self._expr(e.lhs)
            self._jump(OP_JF, false)
            self._expr(e.rhs)
            self._jump(OP_JF, false)
            self._op(OP_PUSH, 1)
            self._jump(OP_JUMP, end)
            self._mark(false)
            self._op(OP_PUSH, 0)
            self._mark(end)
            return _FITS
        if op == "||":
            true, end = _Label(), _Label()
            self._expr(e.lhs)
            self._jump(OP_JT, true)
            self._expr(e.rhs)
            self._jump(OP_JT, true)
            self._op(OP_PUSH, 0)
            self._jump(OP_JUMP, end)
            self._mark(true)
            self._op(OP_PUSH, 1)
            self._mark(end)
            return _FITS
        lhs_ty, rhs_ty = e.lhs.ty, e.rhs.ty
        if lhs_ty.__class__ is not IntType or rhs_ty.__class__ is not IntType:
            self._expr(e.lhs)
            self._expr(e.rhs)
            if op == "==":
                self._op(OP_PEQ)
            elif op == "!=":
                self._op(OP_PNE)
            else:
                raise InterpreterError(f"pointer operands for {op!r}")
            return _FITS
        common = _uac(lhs_ty, rhs_ty)
        st = self._expr(e.lhs)
        self._emit_wrap(common, e.lhs, st)
        st = self._expr(e.rhs)
        self._emit_wrap(common, e.rhs, st)
        return self._binop_op(op, common)

    def _binop_op(self, op: str, ty: IntType):
        """Emit the operator; returns the result's static type."""
        code = _BINOP_CODES[op]
        if OP_EQ <= code <= OP_GE:
            self._op(code)
            return _FITS
        if code is OP_SHL or code is OP_SHR:
            self._op(code, *_wrap_args(ty), ty.width - 1)
        elif code is OP_BAND or code is OP_BOR or code is OP_BXOR:
            self._op(code)  # bitwise ops are closed over wrapped values
        else:
            self._op(code, *_wrap_args(ty))
        return ty

    def _call(self, e: ast.Call):
        sig = self.info.functions[e.callee]
        nargs = 0
        for arg, want in zip(e.args, sig.param_tys):
            st = self._expr(arg)
            if want.__class__ is IntType:
                self._emit_wrap(want, arg, st)
            nargs += 1
        self._flush()
        if sig.is_defined:
            self._op(OP_CALL, self.image.fns[e.callee], nargs)
            return None  # defined calls return raw (unwrapped) values
        acc0 = 0x9E3779B97F4A7C15
        for ch in e.callee.encode():
            acc0 = ((acc0 ^ ch) * 0x100000001B3) & _U64
        returns_int = isinstance(sig.return_ty, IntType)
        self._op(OP_CALL_OP, e.callee, acc0, nargs, returns_int)
        return _FITS if returns_int else None  # opaque calls push 0

    def _lvalue(self, e) -> None:
        self._tick()  # _lvalue_address ticks at entry
        cls = e.__class__
        if cls is ast.Index:
            self._expr(e.index)  # index evaluates before the base
            base = e.base
            if base.__class__ is ast.VarRef and isinstance(
                base.ty, ArrayType
            ):
                kind, where = self._lookup(base.name)
                self._op(OP_IDX_G if kind == "global" else OP_IDX_L, where)
            else:
                self._expr(base)
                self._op(OP_IDX_PTR)
        elif cls is ast.VarRef:
            kind, where = self._lookup(e.name)
            if kind == "fast":
                raise InterpreterError(
                    f"address of slot-allocated local {e.name}"
                )  # pragma: no cover - addrof analysis prevents this
            self._op(OP_ADDR_G if kind == "global" else OP_ADDR_L, where, 0)
        elif cls is ast.Deref:
            self._expr(e.pointer)  # the pointer value is the address
        else:
            raise InterpreterError(f"not an lvalue: {e!r}")

    def _load_at(self) -> None:
        last = self.code[-1] if self.code else None
        if last is not None and last[0] == OP_IDX_G:
            last[0] = OP_LOADIDX_G
        elif last is not None and last[0] == OP_IDX_L:
            last[0] = OP_LOADIDX_L
        else:
            self._op(OP_LOAD_AT)

    def _emit_wrap(self, want: IntType, src_expr, st) -> None:
        """Emit a truncation to ``want`` unless statically redundant
        (``st`` is what ``_expr(src_expr)`` reported)."""
        if src_expr.__class__ is ast.IntLit:
            if wrap(src_expr.value, want) == src_expr.value:
                return
        elif st is _FITS:
            return
        elif st is not None and _wrap_is_noop(st, want):
            return
        self._emit_wrap_op(want)

    def _emit_wrap_op(self, ty: IntType) -> None:
        self._op(OP_WRAP, *_wrap_args(ty))


_WRAP_ARGS_MEMO: dict = {}


def _wrap_args(ty: IntType) -> tuple:
    key = (ty.width, ty.signed)
    args = _WRAP_ARGS_MEMO.get(key)
    if args is None:
        mask = (1 << ty.width) - 1
        maxv = ty.max_value if ty.signed else mask
        args = _WRAP_ARGS_MEMO[key] = (mask, maxv, 1 << ty.width)
    return args


def compile_program(program: ast.Program, info: SymbolInfo) -> _Image:
    """Compile a checked program: globals storage eagerly, function
    bodies lazily (on first call)."""
    image = _Image(info)
    globals_map = image.globals_map
    for g in program.globals():
        ty = g.ty
        if isinstance(ty, ArrayType):
            values = g.init if isinstance(g.init, list) else [0] * ty.length
            cells = [wrap(v, ty.element) for v in values]
            store = _Cells(ty.element, cells, g.name, _fnv32(g.name))
        elif isinstance(ty, IntType):
            init = g.init if isinstance(g.init, int) else 0
            store = _Cells(ty, [wrap(init, ty)], g.name, _fnv32(g.name))
        elif isinstance(ty, PointerType):
            store = _Cells(ty.pointee, [None], g.name, _fnv32(g.name))
        else:
            raise InterpreterError(f"bad global type {ty}")
        globals_map[g.name] = store
        if not g.static:
            image.globals_order.append(store)
    # Pointer globals may reference other globals; resolve after all
    # storage exists (mirrors _Interpreter._init_globals).
    for g in program.globals():
        if isinstance(g.ty, PointerType) and g.init is not None:
            globals_map[g.name].cells[0] = _const_address(
                g.init, globals_map
            )
    # Only shells here: call sites embed the callee _Fn object, whose
    # body compiles on first entry (dead functions never compile).
    for decl in program.decls:
        if isinstance(decl, ast.FuncDef):
            image.fns[decl.name] = _Fn(decl.name, image, decl)
    return image


def _const_address(init, globals_map: dict[str, _Cells]):
    if isinstance(init, ast.AddrOf):
        lv = init.lvalue
        if isinstance(lv, ast.VarRef):
            return (globals_map[lv.name], 0)
        if isinstance(lv, ast.Index) and isinstance(lv.base, ast.VarRef):
            if not isinstance(lv.index, ast.IntLit):
                raise InterpreterError("non-constant global pointer init")
            return (globals_map[lv.base.name], lv.index.value)
    raise InterpreterError(f"unsupported pointer initializer {init!r}")


# -- the VM ----------------------------------------------------------------


class _VM:
    __slots__ = (
        "step_limit", "steps", "call_trace", "marker_hits",
        "function_calls", "activation",
    )

    def __init__(self, step_limit: int) -> None:
        self.step_limit = step_limit
        self.steps = 0
        self.call_trace = 0
        self.marker_hits: dict[str, int] = {}
        self.function_calls: dict[str, int] = {}
        self.activation = 0


def _run(vm: _VM, fn: _Fn, args: list):
    if fn.code is None:
        _FnCompiler(fn).compile()
    fc = vm.function_calls
    fc[fn.name] = fc.get(fn.name, 0) + 1
    vm.activation += 1
    prefix = f"{fn.name}#{vm.activation}:" if fn.needs_ids else None
    slots = [None] * fn.nslots
    for (slot, celled, element, pname), value in zip(fn.params, args):
        if celled:
            slots[slot] = _Cells(element, [value], prefix + pname)
        else:
            slots[slot] = value
    created = len(fn.params)
    limit = vm.step_limit
    code = fn.code
    stack: list = []
    push = stack.append
    pop = stack.pop
    result = None
    ip = 0
    while True:
        ins = code[ip]
        op = ins[0]
        if op == OP_TICK:
            n = ins[1]
            s = vm.steps + n
            vm.steps = s
            if s > limit:
                raise StepLimitExceeded(f"exceeded {limit} steps")
            if (s >> 11) != ((s - n) >> 11):
                check_deadline()
        elif op == OP_LOAD_FAST:
            push(slots[ins[1]])
        elif op == OP_PUSH:
            push(ins[1])
        elif op == OP_WRAP:
            v = pop() & ins[1]
            push(v - ins[3] if v > ins[2] else v)
        elif op == OP_JF:
            v = pop()
            if v is None or (v.__class__ is not tuple and v == 0):
                ip = ins[1]
                continue
        elif op == OP_STORE_FAST:
            slots[ins[1]] = pop()
        elif op == OP_LOAD_G:
            push(ins[1].cells[0])
        elif op == OP_STORE_G:
            ins[1].cells[0] = pop()
        elif op == OP_ADD:
            r = pop()
            v = (stack[-1] + r) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_SUB:
            r = pop()
            v = (stack[-1] - r) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_MUL:
            r = pop()
            v = (stack[-1] * r) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_LOADIDX_G:
            s = ins[1]
            stack[-1] = s.cells[stack[-1] % len(s.cells)]
        elif op == OP_STOREIDX_G:
            v = pop()
            s = ins[1]
            s.cells[pop() % len(s.cells)] = v
        elif op == OP_JUMP:
            ip = ins[1]
            continue
        elif op == OP_EQ:
            r = pop()
            stack[-1] = 1 if stack[-1] == r else 0
        elif op == OP_NE:
            r = pop()
            stack[-1] = 1 if stack[-1] != r else 0
        elif op == OP_LT:
            r = pop()
            stack[-1] = 1 if stack[-1] < r else 0
        elif op == OP_LE:
            r = pop()
            stack[-1] = 1 if stack[-1] <= r else 0
        elif op == OP_GT:
            r = pop()
            stack[-1] = 1 if stack[-1] > r else 0
        elif op == OP_GE:
            r = pop()
            stack[-1] = 1 if stack[-1] >= r else 0
        elif op == OP_BAND:
            r = pop()
            stack[-1] = stack[-1] & r
        elif op == OP_BOR:
            r = pop()
            stack[-1] = stack[-1] | r
        elif op == OP_BXOR:
            r = pop()
            stack[-1] = stack[-1] ^ r
        elif op == OP_SHL:
            r = pop()
            v = (stack[-1] << (r & ins[4])) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_SHR:
            r = pop()
            v = (stack[-1] >> (r & ins[4])) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_DIV:
            r = pop()
            l = stack[-1]
            if r == 0:
                v = l
            else:
                v = abs(l) // abs(r)
                if (l < 0) != (r < 0):
                    v = -v
            v &= ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_REM:
            r = pop()
            l = stack[-1]
            if r == 0:
                v = l
            else:
                q = abs(l) // abs(r)
                if (l < 0) != (r < 0):
                    q = -q
                v = l - q * r
            v &= ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_NEG:
            v = (-stack[-1]) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_BNOT:
            v = (~stack[-1]) & ins[1]
            stack[-1] = v - ins[3] if v > ins[2] else v
        elif op == OP_LNOT:
            v = stack[-1]
            if v.__class__ is tuple:
                stack[-1] = 0
            elif v is None:
                stack[-1] = 1
            else:
                stack[-1] = 1 if v == 0 else 0
        elif op == OP_JT:
            v = pop()
            if v is not None and (v.__class__ is tuple or v != 0):
                ip = ins[1]
                continue
        elif op == OP_LOAD_L:
            push(slots[ins[1]].cells[0])
        elif op == OP_STORE_L:
            slots[ins[1]].cells[0] = pop()
        elif op == OP_LOADIDX_L:
            s = slots[ins[1]]
            stack[-1] = s.cells[stack[-1] % len(s.cells)]
        elif op == OP_STOREIDX_L:
            v = pop()
            s = slots[ins[1]]
            s.cells[pop() % len(s.cells)] = v
        elif op == OP_ADDR_G:
            push((ins[1], ins[2]))
        elif op == OP_ADDR_L:
            push((slots[ins[1]], ins[2]))
        elif op == OP_IDX_G:
            s = ins[1]
            stack[-1] = (s, stack[-1] % len(s.cells))
        elif op == OP_IDX_L:
            s = slots[ins[1]]
            stack[-1] = (s, stack[-1] % len(s.cells))
        elif op == OP_IDX_PTR:
            p = pop()
            s = p[0]
            stack[-1] = (s, (p[1] + stack[-1]) % len(s.cells))
        elif op == OP_LOAD_AT:
            a = stack[-1]
            stack[-1] = a[0].cells[a[1]]
        elif op == OP_STORE_AT:
            v = pop()
            a = pop()
            a[0].cells[a[1]] = v
        elif op == OP_DUP:
            push(stack[-1])
        elif op == OP_POP:
            pop()
        elif op == OP_PEQ or op == OP_PNE:
            r = pop()
            l = stack[-1]
            if l is None or r is None:
                eq = l is None and r is None
            elif l.__class__ is tuple:
                eq = (
                    r.__class__ is tuple and l[0] is r[0] and l[1] == r[1]
                )
            elif r.__class__ is tuple:
                eq = False
            else:
                eq = l == r
            stack[-1] = (1 if eq else 0) if op == OP_PEQ else (0 if eq else 1)
        elif op == OP_SWITCH:
            ip = ins[1].get(pop(), ins[2])
            continue
        elif op == OP_CALL:
            fn2 = ins[1]
            n = ins[2]
            if n:
                args2 = stack[-n:]
                del stack[-n:]
            else:
                args2 = []
            push(_run(vm, fn2, args2))
        elif op == OP_CALL_OP:
            name = ins[1]
            acc = ins[2]
            n = ins[3]
            if n:
                vals = stack[-n:]
                del stack[-n:]
            else:
                vals = ()
            mh = vm.marker_hits
            mh[name] = mh.get(name, 0) + 1
            for v in vals:
                if v.__class__ is tuple:
                    hb = v[0].hash_base
                    piece = (
                        2 if hb is None else (hb ^ (v[1] & 0xFFFF)) & 0xFFFF
                    )
                elif v is None:
                    piece = 1
                else:
                    piece = (v * 2 + 3) & _U64
                acc = ((acc ^ piece) * 0x100000001B3) & _U64
            vm.call_trace = (vm.call_trace + (acc or 1)) & _U64
            push(0 if ins[4] else None)
        elif op == OP_DECL_FAST:
            created += 1
            slots[ins[1]] = pop()
        elif op == OP_DECL_FAST_K:
            created += 1
            slots[ins[1]] = ins[2]
        elif op == OP_DECL_CELL:
            slots[ins[1]] = _Cells(
                ins[3], [pop()], f"{prefix}{ins[2]}@{created}"
            )
            created += 1
        elif op == OP_DECL_CELL_K:
            slots[ins[1]] = _Cells(
                ins[3], [ins[4]], f"{prefix}{ins[2]}@{created}"
            )
            created += 1
        elif op == OP_DECL_ARR:
            ninit = ins[5]
            cells = [0] * ins[4]
            if ninit:
                cells[:ninit] = stack[-ninit:]
                del stack[-ninit:]
            slots[ins[1]] = _Cells(
                ins[3], cells, f"{prefix}{ins[2]}@{created}"
            )
            created += 1
        elif op == OP_RET:
            result = pop()
            break
        elif op == OP_RET_NONE:
            break
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"unknown opcode {op}")
        ip += 1
    if result is None and fn.returns_int:
        return 0
    return result


def _checksum(globals_order: list) -> int:
    acc = 0xCBF29CE484222325  # FNV offset basis
    for store in globals_order:
        for cell in store.cells:
            if cell.__class__ is tuple:
                hb = cell[0].hash_base
                if hb is None:  # escaped pointer to a local
                    piece = pointer_cell_hash(cell[0].object_id, cell[1])
                else:
                    piece = (hb ^ (cell[1] & 0xFFFF)) & 0xFFFF
            elif cell is None:
                piece = 0
            else:
                piece = cell & _U64
            acc ^= piece
            acc = (acc * 0x100000001B3) & _U64
    return acc


def run_program(
    program: ast.Program,
    step_limit: int = DEFAULT_STEP_LIMIT,
    info: SymbolInfo | None = None,
) -> ExecutionResult:
    """Compile ``program`` to bytecode and execute it from ``main``.

    Drop-in replacement for the AST interpreter's ``run_program`` with
    a bit-identical :class:`ExecutionResult`.
    """
    if info is None:
        info = check_program(program)
    main = program.function("main")
    tracer = current_tracer()
    with tracer.span(
        "interp.run", step_limit=step_limit, backend="bytecode"
    ) as span:
        image = compile_program(program, info)
        vm = _VM(step_limit)
        try:
            value = _run(vm, image.fns[main.name], [])
        except StepLimitExceeded:
            span.set("step_limit_exceeded", True)
            raise
        exit_code = value if isinstance(value, int) else 0
        result = ExecutionResult(
            exit_code=wrap(exit_code if exit_code is not None else 0, INT),
            marker_hits=dict(vm.marker_hits),
            steps=vm.steps,
            checksum=_checksum(image.globals_order),
            call_trace=vm.call_trace,
            function_calls=dict(vm.function_calls),
        )
        span.update(
            steps=result.steps,
            exit_code=result.exit_code,
            markers_hit=len(result.marker_hits),
            function_calls=sum(result.function_calls.values()),
        )
    return result
