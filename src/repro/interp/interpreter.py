"""MiniC reference interpreter.

Executes a checked MiniC program directly on the AST.  This is the
paper's *ground truth* mechanism: the test programs are deterministic
and input-free, so a marker (call to an opaque function) executed
during interpretation belongs to an alive block, and every marker that
is never executed is dead for all executions.

The interpreter also produces a checksum of all global state at exit,
which the test suite uses for translation validation against the IR
interpreter at every optimization level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..budget import check_deadline
from ..frontend.typecheck import SymbolInfo, check_program
from ..lang import ast_nodes as ast
from ..lang.semantics import eval_binop, eval_unop, wrap
from ..observability.tracer import current_tracer
from ..lang.types import (
    INT,
    LONG,
    ArrayType,
    IntType,
    PointerType,
    Type,
    VoidType,
    promote,
    usual_arithmetic_conversion,
)


class StepLimitExceeded(RuntimeError):
    """The program exceeded the execution step budget."""


class InterpreterError(RuntimeError):
    """An internal inconsistency (checked programs should never hit it)."""


@dataclass(frozen=True)
class Address:
    """A pointer value: a cell within a named storage object.

    ``object_id`` is unique per storage object (globals keep their
    name; locals get a fresh id per activation); ``index`` selects the
    cell (0 for scalars).
    """

    object_id: str
    index: int
    element: IntType


NULL = None  # the null pointer value
_U64 = 0xFFFFFFFFFFFFFFFF


@dataclass
class _Storage:
    """One storage object: a boxed list of integer cells."""

    element: IntType
    cells: list


@dataclass
class ExecutionResult:
    """Everything observable about one program execution."""

    exit_code: int
    marker_hits: dict[str, int] = field(default_factory=dict)
    steps: int = 0
    checksum: int = 0
    #: order-insensitive fold of every opaque call's (name, args);
    #: compilers must preserve it exactly.
    call_trace: int = 0
    #: activation counts of *defined* functions (used by the primary
    #: marker analysis; not part of observable behaviour — inlining
    #: legitimately changes it)
    function_calls: dict[str, int] = field(default_factory=dict)

    def executed_markers(self) -> frozenset[str]:
        return frozenset(self.marker_hits)


def call_observation(callee: str, values: list) -> int:
    """A deterministic digest of one opaque call (callee + arguments)."""
    acc = 0x9E3779B97F4A7C15
    for ch in callee.encode():
        acc = ((acc ^ ch) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    for value in values:
        if isinstance(value, Address):
            # Local objects get interpreter-specific ids (frame names
            # vs stack-slot names); only the *cell within a global* is
            # a stable observation.  Locals hash to a fixed tag.
            if "#" in value.object_id or value.object_id.startswith("%"):
                piece = 2
            else:
                piece = pointer_cell_hash(value.object_id, value.index)
        elif value is NULL:
            piece = 1
        else:
            piece = (int(value) * 2 + 3) & 0xFFFFFFFFFFFFFFFF
        acc = ((acc ^ piece) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc or 1


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value) -> None:
        super().__init__()
        self.value = value


# Default budget: generous for generator output (which bounds loops),
# small enough that accidental runaway programs fail fast.
DEFAULT_STEP_LIMIT = 2_000_000


def pointer_cell_hash(object_id: str, index: int) -> int:
    """Deterministic (process-independent) hash of a pointer cell.

    Used by both interpreters' checksums so a pointer to global ``g``
    hashes identically whether produced by AST or IR execution.
    Pointers to *locals* escape only in programs the generator never
    produces; their object ids differ between the two interpreters by
    design, which translation-validation tests would flag.
    """
    acc = 0x811C9DC5
    for byte in object_id.encode():
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return (acc ^ (index & 0xFFFF)) & 0xFFFF


def run_program(
    program: ast.Program,
    step_limit: int = DEFAULT_STEP_LIMIT,
    info: SymbolInfo | None = None,
) -> ExecutionResult:
    """Execute ``program`` starting from ``main`` and return the result.

    ``info`` may be passed when the program has already been checked;
    otherwise the checker runs first (annotating expression types).
    """
    if info is None:
        info = check_program(program)
    tracer = current_tracer()
    with tracer.span("interp.run", step_limit=step_limit, backend="ast") as span:
        try:
            result = _Interpreter(program, info, step_limit).run()
        except StepLimitExceeded:
            span.set("step_limit_exceeded", True)
            raise
        span.update(
            steps=result.steps,
            exit_code=result.exit_code,
            markers_hit=len(result.marker_hits),
            function_calls=sum(result.function_calls.values()),
        )
    return result


class _Interpreter:
    def __init__(self, program: ast.Program, info: SymbolInfo, step_limit: int) -> None:
        self.program = program
        self.info = info
        self.step_limit = step_limit
        self.steps = 0
        self.call_trace = 0
        self.marker_hits: dict[str, int] = {}
        self.function_calls: dict[str, int] = {}
        self.storage: dict[str, _Storage] = {}
        self._activation = 0
        self._globals_order: list[str] = []
        self._init_globals()

    # -- setup ------------------------------------------------------------

    def _init_globals(self) -> None:
        for g in self.program.globals():
            # Only externally-visible globals are observable state at
            # exit; internal (static) globals may legally be optimized
            # away entirely, so they stay out of the checksum.
            if not g.static:
                self._globals_order.append(g.name)
            ty = g.ty
            if isinstance(ty, ArrayType):
                values = g.init if isinstance(g.init, list) else [0] * ty.length
                cells = [wrap(v, ty.element) for v in values]
                self.storage[g.name] = _Storage(ty.element, cells)
            elif isinstance(ty, IntType):
                init = g.init if isinstance(g.init, int) else 0
                self.storage[g.name] = _Storage(ty, [wrap(init, ty)])
            elif isinstance(ty, PointerType):
                self.storage[g.name] = _Storage(ty.pointee, [NULL])
            else:
                raise InterpreterError(f"bad global type {ty}")
        # Pointer globals may reference other globals; resolve after all
        # storage exists.
        for g in self.program.globals():
            if isinstance(g.ty, PointerType) and g.init is not None:
                addr = self._const_address(g.init)
                self.storage[g.name].cells[0] = addr

    def _const_address(self, init) -> Address:
        if isinstance(init, ast.AddrOf):
            lv = init.lvalue
            if isinstance(lv, ast.VarRef):
                store = self.storage[lv.name]
                return Address(lv.name, 0, store.element)
            if isinstance(lv, ast.Index) and isinstance(lv.base, ast.VarRef):
                if not isinstance(lv.index, ast.IntLit):
                    raise InterpreterError("non-constant global pointer init")
                store = self.storage[lv.base.name]
                return Address(lv.base.name, lv.index.value, store.element)
        raise InterpreterError(f"unsupported pointer initializer {init!r}")

    # -- driver --------------------------------------------------------------

    def run(self) -> ExecutionResult:
        main = self.program.function("main")
        try:
            value = self._call_function(main, [])
        except _ReturnSignal as sig:  # pragma: no cover - defensive
            value = sig.value
        exit_code = value if isinstance(value, int) else 0
        return ExecutionResult(
            exit_code=wrap(exit_code if exit_code is not None else 0, INT),
            marker_hits=dict(self.marker_hits),
            steps=self.steps,
            checksum=self._checksum(),
            call_trace=self.call_trace,
            function_calls=dict(self.function_calls),
        )

    def _checksum(self) -> int:
        acc = 0xCBF29CE484222325  # FNV offset basis
        for name in self._globals_order:
            for cell in self.storage[name].cells:
                if isinstance(cell, Address):
                    piece = pointer_cell_hash(cell.object_id, cell.index)
                elif cell is NULL:
                    piece = 0
                else:
                    piece = cell & 0xFFFFFFFFFFFFFFFF
                acc ^= piece
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(f"exceeded {self.step_limit} steps")
        # Poll the campaign's cooperative per-seed wall-clock budget at
        # the existing step-check site (cheap: every 2048 steps).
        if not self.steps & 2047:
            check_deadline()

    # -- function calls -----------------------------------------------------

    def _call_function(self, func: ast.FuncDef, args: list):
        self.function_calls[func.name] = self.function_calls.get(func.name, 0) + 1
        self._activation += 1
        frame_prefix = f"{func.name}#{self._activation}:"
        frame: dict[str, str] = {}
        created: list[str] = []
        for param, value in zip(func.params, args):
            obj = frame_prefix + param.name
            element = param.ty if isinstance(param.ty, IntType) else param.ty.pointee
            stored = wrap(value, param.ty) if isinstance(param.ty, IntType) else value
            self.storage[obj] = _Storage(element, [stored])
            frame[param.name] = obj
            created.append(obj)
        result = None
        try:
            self._exec_block(func.body, frame, frame_prefix, created)
        except _ReturnSignal as sig:
            result = sig.value
        finally:
            for obj in created:
                self.storage.pop(obj, None)
        if result is None and isinstance(func.return_ty, IntType):
            result = 0
        return result

    def _call(self, expr: ast.Call, frame: dict[str, str]):
        sig = self.info.functions[expr.callee]
        values = [self._eval_converted(a, want, frame) for a, want in zip(expr.args, sig.param_tys)]
        if not sig.is_defined:
            self.marker_hits[expr.callee] = self.marker_hits.get(expr.callee, 0) + 1
            self.call_trace = (self.call_trace + call_observation(expr.callee, values)) & _U64
            if isinstance(sig.return_ty, IntType):
                return 0
            return None
        callee = self.program.function(expr.callee)
        return self._call_function(callee, values)

    # -- statements ----------------------------------------------------------

    def _exec_block(
        self,
        block: ast.Block,
        frame: dict[str, str],
        prefix: str,
        created: list[str],
    ) -> None:
        shadowed: list[tuple[str, str | None]] = []
        declared: list[str] = []
        try:
            for stmt in block.stmts:
                self._exec_stmt(stmt, frame, prefix, created, shadowed, declared)
        finally:
            for name in declared:
                frame.pop(name, None)
            for name, old in reversed(shadowed):
                if old is not None:
                    frame[name] = old

    def _exec_stmt(self, stmt, frame, prefix, created, shadowed, declared) -> None:
        self._tick()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame, prefix, created)
        elif isinstance(stmt, ast.VarDecl):
            self._declare(stmt, frame, prefix, created, shadowed, declared)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt, frame)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, ast.If):
            if self._truthy(stmt.cond, frame):
                self._exec_block(stmt.then, frame, prefix, created)
            elif stmt.els is not None:
                self._exec_block(stmt.els, frame, prefix, created)
        elif isinstance(stmt, ast.While):
            while self._truthy(stmt.cond, frame):
                self._tick()
                try:
                    self._exec_block(stmt.body, frame, prefix, created)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec_block(stmt.body, frame, prefix, created)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(stmt.cond, frame):
                    break
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame, prefix, created)
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt, frame, prefix, created)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                raise _ReturnSignal(None)
            value = self._eval(stmt.value, frame)
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        else:
            raise InterpreterError(f"unknown statement {stmt!r}")

    def _exec_for(self, stmt: ast.For, frame, prefix, created) -> None:
        inner_shadowed: list[tuple[str, str | None]] = []
        inner_declared: list[str] = []
        try:
            if stmt.init is not None:
                self._exec_stmt(stmt.init, frame, prefix, created, inner_shadowed, inner_declared)
            while stmt.cond is None or self._truthy(stmt.cond, frame):
                self._tick()
                try:
                    self._exec_block(stmt.body, frame, prefix, created)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._exec_stmt(stmt.step, frame, prefix, created, inner_shadowed, inner_declared)
        finally:
            for name in inner_declared:
                frame.pop(name, None)
            for name, old in reversed(inner_shadowed):
                if old is not None:
                    frame[name] = old

    def _exec_switch(self, stmt: ast.Switch, frame, prefix, created) -> None:
        value = self._eval(stmt.scrutinee, frame)
        default = None
        chosen = None
        for case in stmt.cases:
            if case.value is None:
                default = case
            elif case.value == value:
                chosen = case
                break
        if chosen is None:
            chosen = default
        if chosen is not None:
            try:
                self._exec_block(chosen.body, frame, prefix, created)
            except _BreakSignal:
                pass

    def _declare(self, stmt: ast.VarDecl, frame, prefix, created, shadowed, declared) -> None:
        obj = f"{prefix}{stmt.name}@{len(created)}"
        ty = stmt.ty
        if isinstance(ty, ArrayType):
            cells = [0] * ty.length
            if isinstance(stmt.init, list):
                for i, e in enumerate(stmt.init):
                    cells[i] = self._eval_converted(e, ty.element, frame)
            self.storage[obj] = _Storage(ty.element, cells)
        elif isinstance(ty, IntType):
            value = 0
            if isinstance(stmt.init, ast.Expr):
                value = self._eval_converted(stmt.init, ty, frame)
            self.storage[obj] = _Storage(ty, [value])
        elif isinstance(ty, PointerType):
            value = NULL
            if isinstance(stmt.init, ast.Expr):
                value = self._eval(stmt.init, frame)
            self.storage[obj] = _Storage(ty.pointee, [value])
        else:
            raise InterpreterError(f"bad local type {ty}")
        if stmt.name in frame:
            shadowed.append((stmt.name, frame[stmt.name]))
        else:
            shadowed.append((stmt.name, None))
            declared.append(stmt.name)
        frame[stmt.name] = obj
        created.append(obj)

    def _assign(self, stmt: ast.Assign, frame) -> None:
        addr = self._lvalue_address(stmt.target, frame)
        store = self.storage[addr.object_id]
        target_ty = stmt.target.ty
        if stmt.op:
            assert isinstance(target_ty, IntType)
            old = store.cells[addr.index]
            rhs_ty = stmt.value.ty
            assert isinstance(rhs_ty, IntType)
            common = usual_arithmetic_conversion(target_ty, rhs_ty)
            lhs_v = wrap(old, common)
            rhs_v = wrap(self._eval(stmt.value, frame), common)
            result = eval_binop(stmt.op, lhs_v, rhs_v, common)
            store.cells[addr.index] = wrap(result, target_ty)
            return
        if isinstance(target_ty, PointerType):
            store.cells[addr.index] = self._eval(stmt.value, frame)
        else:
            assert isinstance(target_ty, IntType)
            store.cells[addr.index] = self._eval_converted(stmt.value, target_ty, frame)

    # -- expressions ----------------------------------------------------------

    def _truthy(self, expr: ast.Expr, frame) -> bool:
        value = self._eval(expr, frame)
        if isinstance(value, Address):
            return True
        return value not in (0, NULL)

    def _eval_converted(self, expr: ast.Expr, want: Type, frame):
        value = self._eval(expr, frame)
        if isinstance(want, IntType):
            if isinstance(value, Address) or value is NULL:
                raise InterpreterError("pointer converted to integer")
            return wrap(value, want)
        return value

    def _object_for(self, name: str, frame) -> str:
        obj = frame.get(name)
        if obj is not None:
            return obj
        if name in self.storage:
            return name
        raise InterpreterError(f"no storage for {name}")

    def _lvalue_address(self, expr: ast.Expr, frame) -> Address:
        self._tick()
        if isinstance(expr, ast.VarRef):
            obj = self._object_for(expr.name, frame)
            store = self.storage[obj]
            return Address(obj, 0, store.element)
        if isinstance(expr, ast.Index):
            base = expr.base
            index = self._eval(expr.index, frame)
            if isinstance(index, Address):
                raise InterpreterError("pointer used as index")
            if isinstance(base, ast.VarRef) and isinstance(base.ty, ArrayType):
                obj = self._object_for(base.name, frame)
                store = self.storage[obj]
                idx = index % len(store.cells)  # MiniC defines wrapping access
                return Address(obj, idx, store.element)
            ptr = self._eval(base, frame)
            if not isinstance(ptr, Address):
                raise InterpreterError("indexing a null pointer")
            store = self.storage[ptr.object_id]
            idx = (ptr.index + index) % len(store.cells)
            return Address(ptr.object_id, idx, store.element)
        if isinstance(expr, ast.Deref):
            ptr = self._eval(expr.pointer, frame)
            if not isinstance(ptr, Address):
                raise InterpreterError("dereferencing a null pointer")
            return ptr
        raise InterpreterError(f"not an lvalue: {expr!r}")

    def _eval(self, expr: ast.Expr, frame):
        self._tick()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            obj = self._object_for(expr.name, frame)
            store = self.storage[obj]
            if isinstance(expr.ty, ArrayType):
                # Array decays to pointer to first element.
                return Address(obj, 0, store.element)
            return store.cells[0]
        if isinstance(expr, (ast.Index, ast.Deref)):
            addr = self._lvalue_address(expr, frame)
            return self.storage[addr.object_id].cells[addr.index]
        if isinstance(expr, ast.AddrOf):
            return self._lvalue_address(expr.lvalue, frame)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)
            assert isinstance(expr.ty, IntType)
            if expr.op == "!":
                if isinstance(value, Address):
                    return 0
                if value is NULL:
                    return 1
                return 1 if value == 0 else 0
            operand_ty = expr.operand.ty
            assert isinstance(operand_ty, IntType)
            promoted = promote(operand_ty)
            return eval_unop(expr.op, wrap(value, promoted), promoted)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, frame)
            if isinstance(value, Address) or value is NULL:
                raise InterpreterError("pointer cast to integer")
            return wrap(value, expr.target)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, frame)
        if isinstance(expr, ast.Call):
            return self._call(expr, frame)
        raise InterpreterError(f"unknown expression {expr!r}")

    def _binary(self, expr: ast.Binary, frame):
        op = expr.op
        if op == "&&":
            if not self._truthy(expr.lhs, frame):
                return 0
            return 1 if self._truthy(expr.rhs, frame) else 0
        if op == "||":
            if self._truthy(expr.lhs, frame):
                return 1
            return 1 if self._truthy(expr.rhs, frame) else 0
        lhs = self._eval(expr.lhs, frame)
        rhs = self._eval(expr.rhs, frame)
        lhs_ty = expr.lhs.ty
        rhs_ty = expr.rhs.ty
        if isinstance(lhs_ty, (PointerType, ArrayType)) or isinstance(rhs_ty, (PointerType, ArrayType)):
            same = _pointer_equal(lhs, rhs)
            if op == "==":
                return 1 if same else 0
            if op == "!=":
                return 0 if same else 1
            raise InterpreterError(f"pointer operands for {op!r}")
        assert isinstance(lhs_ty, IntType) and isinstance(rhs_ty, IntType)
        common = usual_arithmetic_conversion(lhs_ty, rhs_ty)
        return eval_binop(op, wrap(lhs, common), wrap(rhs, common), common)


def _pointer_equal(lhs, rhs) -> bool:
    if lhs is NULL or rhs is NULL:
        return lhs is NULL and rhs is NULL
    if isinstance(lhs, Address) and isinstance(rhs, Address):
        return lhs.object_id == rhs.object_id and lhs.index == rhs.index
    if isinstance(lhs, Address) or isinstance(rhs, Address):
        # Pointer compared against integer 0 (null).
        other = rhs if isinstance(lhs, Address) else lhs
        return False if other == 0 else False
    return lhs == rhs
