"""Assembly emission and artifact inspection."""

from .asm import alive_markers, emit_function, emit_module

__all__ = ["alive_markers", "emit_function", "emit_module"]
