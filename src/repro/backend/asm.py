"""Assembly backend.

Emits a linear pseudo-assembly for the IR.  The format is intentionally
close to AT&T-style listings: labels, ``mov``/ALU ops over virtual
registers, ``cmp``+``jcc`` pairs for branches, and — crucially —
``call <symbol>`` lines for calls.  The paper's technique inspects the
*output artifact only*: a marker is alive iff a ``call`` to it appears
in the emitted text (see :func:`alive_markers`).
"""

from __future__ import annotations

import re

from ..ir import instructions as ins
from ..ir.function import Block, IRFunction, Module
from ..ir.values import Constant, GlobalRef, NullPtr, Param, Value

_CALL_RE = re.compile(r"^\s*call\s+(\w+)", re.MULTILINE)

_JCC = {"==": "je", "!=": "jne", "<": "jl", "<=": "jle", ">": "jg", ">=": "jge"}
_UJCC = {"==": "je", "!=": "jne", "<": "jb", "<=": "jbe", ">": "ja", ">=": "jae"}
_ALU = {
    "+": "add", "-": "sub", "*": "imul", "/": "idiv", "%": "irem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sar",
}


def emit_module(module: Module) -> str:
    """Emit assembly text for the whole module."""
    parts: list[str] = [f"\t.file\t\"{module.name}\"\n"]
    for info in module.globals.values():
        section = ".local" if info.static else ".globl"
        parts.append(f"\t{section}\t{info.name}\n")
        parts.append(f"{info.name}:\n")
        for cell in info.initial_cells():
            if isinstance(cell, tuple):
                parts.append(f"\t.quad\t{cell[1]}+{cell[2]}\n")
            elif cell is None:
                parts.append("\t.quad\t0\n")
            else:
                parts.append(f"\t.long\t{int(cell)}\n")
    for func in module.functions.values():
        parts.append(emit_function(func))
    return "".join(parts)


def emit_function(func: IRFunction) -> str:
    emitter = _Emitter(func)
    return emitter.run()


def alive_markers(asm: str, prefix: str = "") -> frozenset[str]:
    """The set of symbols still called in the assembly.

    With a ``prefix`` (e.g. ``"DCEMarker"``) only matching symbols are
    returned; this is the paper's liveness oracle.
    """
    found = {m.group(1) for m in _CALL_RE.finditer(asm)}
    if prefix:
        found = {name for name in found if name.startswith(prefix)}
    return frozenset(found)


class _Emitter:
    def __init__(self, func: IRFunction) -> None:
        self.func = func
        self.names: dict[int, str] = {}
        self.lines: list[str] = []

    def run(self) -> str:
        func = self.func
        self.lines = [f"\t.globl\t{func.name}\n", f"{func.name}:\n"]
        for i, param in enumerate(func.params):
            self.names[id(param)] = f"%arg{i}"
        order = func.reverse_postorder()
        order_ids = {id(b) for b in order}
        # Emit unreachable-but-present blocks too (a compiler that
        # failed to remove them leaves their code in the binary).
        tail = [b for b in func.blocks if id(b) not in order_ids]
        for block in order + tail:
            self._block(block)
        self.lines.append("\n")
        return "".join(self.lines)

    def _label(self, block: Block) -> str:
        return f".L{self.func.name}_{block.label.replace('.', '_')}"

    def _reg(self, value: Value) -> str:
        if isinstance(value, Constant):
            return f"${value.value}"
        if isinstance(value, NullPtr):
            return "$0"
        if isinstance(value, GlobalRef):
            return f"${value.name}"
        key = id(value)
        if key not in self.names:
            self.names[key] = f"%v{len(self.names)}"
        return self.names[key]

    def _emit(self, text: str) -> None:
        self.lines.append(f"\t{text}\n")

    def _block(self, block: Block) -> None:
        self.lines.append(f"{self._label(block)}:\n")
        for instr in block.instrs:
            self._instr(instr, block)

    def _instr(self, instr: ins.Instr, block: Block) -> None:
        e = self._emit
        r = self._reg
        if isinstance(instr, ins.Alloca):
            e(f"lea\t{instr.var_name}(%rsp), {r(instr)}")
        elif isinstance(instr, ins.Gep):
            e(f"lea\t({r(instr.base)},{r(instr.index)},w), {r(instr)}")
        elif isinstance(instr, (ins.Load, ins.LoadPtr)):
            e(f"mov\t({r(instr.address)}), {r(instr)}")
        elif isinstance(instr, ins.Store):
            e(f"mov\t{r(instr.value)}, ({r(instr.address)})")
        elif isinstance(instr, ins.BinOp):
            op = _ALU.get(instr.op, instr.op)
            if instr.op == ">>" and not instr.ty.signed:
                op = "shr"
            e(f"{op}\t{r(instr.lhs)}, {r(instr.rhs)}, {r(instr)}")
        elif isinstance(instr, (ins.ICmp, ins.PCmp)):
            e(f"cmp\t{r(instr.lhs)}, {r(instr.rhs)}")
            table = _JCC
            if isinstance(instr, ins.ICmp) and not instr.operand_ty.signed:
                table = _UJCC
            e(f"set{table[instr.op][1:]}\t{r(instr)}")
        elif isinstance(instr, ins.Cast):
            e(f"movx\t{r(instr.value)}, {r(instr)}")
        elif isinstance(instr, ins.Select):
            e(f"test\t{r(instr.cond)}, {r(instr.cond)}")
            e(f"cmov\t{r(instr.if_true)}, {r(instr.if_false)}, {r(instr)}")
        elif isinstance(instr, ins.Call):
            for arg in instr.args:
                e(f"push\t{r(arg)}")
            e(f"call\t{instr.callee}")
            if instr.produces_value():
                e(f"mov\t%rax, {r(instr)}")
        elif isinstance(instr, ins.Phi):
            # Phis are resolved by the (virtual) register allocator; in
            # the listing they appear as an annotated copy.
            srcs = ", ".join(f"{b.label}:{self._reg(v)}" for b, v in instr.incomings)
            e(f"phi\t[{srcs}] -> {r(instr)}")
        elif isinstance(instr, ins.Br):
            e(f"test\t{r(instr.cond)}, {r(instr.cond)}")
            e(f"jne\t{self._label(instr.if_true)}")
            e(f"jmp\t{self._label(instr.if_false)}")
        elif isinstance(instr, ins.Jmp):
            e(f"jmp\t{self._label(instr.target)}")
        elif isinstance(instr, ins.Ret):
            if instr.value is not None:
                e(f"mov\t{r(instr.value)}, %rax")
            e("ret")
        elif isinstance(instr, ins.Unreachable):
            e("ud2")
        else:  # pragma: no cover - all instructions are handled
            e(f"; unknown {type(instr).__name__}")
